"""Unit tests for the coverage index and greedy maximum coverage."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SamplingError
from repro.sampling.coverage import CoverageIndex


def make_index(n, sets):
    index = CoverageIndex(n)
    for members in sets:
        index.add(np.asarray(members, dtype=np.int64))
    return index


class TestAdd:
    def test_counts_updated(self):
        index = make_index(4, [[0, 1], [1, 2]])
        assert index.coverage_of(0) == 1
        assert index.coverage_of(1) == 2
        assert index.coverage_of(3) == 0
        assert len(index) == 2

    def test_empty_set_rejected(self):
        index = CoverageIndex(3)
        with pytest.raises(SamplingError):
            index.add(np.array([], dtype=np.int64))

    def test_out_of_range_rejected(self):
        index = CoverageIndex(3)
        with pytest.raises(SamplingError):
            index.add(np.array([5]))

    def test_duplicate_members_rejected(self):
        # A repeated id inside one set would desynchronize the coverage
        # counts from coverage_of_set (inflated argmax); reject loudly.
        index = CoverageIndex(5)
        with pytest.raises(SamplingError):
            index.add(np.array([2, 2, 3]))
        # Duplicates across different sets of one batch are legitimate.
        index.add_batch(
            np.array([2, 3, 2, 4], dtype=np.int64),
            np.array([0, 2, 4], dtype=np.int64),
        )
        assert index.coverage_of(2) == 2

    def test_total_size(self):
        index = make_index(4, [[0, 1], [1, 2, 3]])
        assert index.total_size() == 5

    def test_invalid_n(self):
        with pytest.raises(ConfigurationError):
            CoverageIndex(0)


class TestArgmax:
    def test_argmax_node(self):
        index = make_index(4, [[0, 1], [1, 2], [1]])
        node, coverage = index.argmax_node()
        assert node == 1
        assert coverage == 3

    def test_tie_breaks_to_smallest_id(self):
        index = make_index(4, [[2, 3]])
        node, coverage = index.argmax_node()
        assert node == 2
        assert coverage == 1

    def test_empty_pool_rejected(self):
        with pytest.raises(SamplingError):
            CoverageIndex(3).argmax_node()

    def test_coverage_counts_copy(self):
        index = make_index(3, [[0]])
        counts = index.coverage_counts()
        counts[0] = 99
        assert index.coverage_of(0) == 1


class TestCoverageOfSet:
    def test_union_not_sum(self):
        index = make_index(4, [[0, 1], [1, 2]])
        # Both sets contain node 1: the pair {0, 1} covers both sets but the
        # count is 2 (union), not 3 (sum).
        assert index.coverage_of_set([0, 1]) == 2

    def test_empty_seed_set(self):
        index = make_index(4, [[0, 1]])
        assert index.coverage_of_set([]) == 0

    def test_out_of_range_node(self):
        index = make_index(4, [[0]])
        with pytest.raises(SamplingError):
            index.coverage_of_set([9])


class TestGreedyMaxCoverage:
    def test_single_pick_is_argmax(self):
        index = make_index(5, [[0, 1], [1, 2], [1, 3], [4]])
        result = index.greedy_max_coverage(1)
        assert result.nodes == [1]
        assert result.covered == 3

    def test_two_picks_cover_more(self):
        index = make_index(5, [[0, 1], [1, 2], [1, 3], [4]])
        result = index.greedy_max_coverage(2)
        assert result.nodes[0] == 1
        assert result.covered == 4  # node 4 mops up the singleton

    def test_marginal_gains_decrease(self):
        index = make_index(6, [[0, 1, 2], [0, 3], [0, 4], [5]])
        result = index.greedy_max_coverage(3)
        gains = result.marginal_gains
        assert all(gains[i] >= gains[i + 1] for i in range(len(gains) - 1))

    def test_budget_exceeding_useful_nodes_pads_with_zero_gain(self):
        index = make_index(4, [[0]])
        result = index.greedy_max_coverage(3)
        assert len(result.nodes) == 3
        assert result.covered == 1
        assert result.marginal_gains[1:] == [0, 0]

    def test_no_duplicate_picks(self):
        index = make_index(4, [[0, 1], [0, 2], [0, 3]])
        result = index.greedy_max_coverage(4)
        assert len(set(result.nodes)) == len(result.nodes)

    def test_stop_at_coverage(self):
        index = make_index(6, [[0], [1], [2], [3], [4], [5]])
        result = index.greedy_max_coverage(6, stop_at_coverage=3)
        assert result.covered == 3
        assert len(result.nodes) == 3

    def test_matches_optimum_when_disjoint(self):
        # Disjoint sets: greedy is exactly optimal.
        index = make_index(6, [[0], [0], [1], [2]])
        result = index.greedy_max_coverage(2)
        assert result.covered == 3  # node 0 (2 sets) + one singleton

    def test_guarantee_on_adversarial_instance(self):
        # Classic greedy-vs-optimal gap instance; greedy must stay within
        # 1 - (1 - 1/b)^b of optimal.
        sets = [[0, 2], [0, 3], [1, 2], [1, 3], [2], [3]]
        index = make_index(4, sets)
        b = 2
        greedy = index.greedy_max_coverage(b).covered
        # Brute-force the optimal pair.
        best = 0
        for u in range(4):
            for v in range(u + 1, 4):
                best = max(best, index.coverage_of_set([u, v]))
        rho = 1 - (1 - 1 / b) ** b
        assert greedy >= rho * best

    def test_invalid_budget(self):
        index = make_index(3, [[0]])
        with pytest.raises(ConfigurationError):
            index.greedy_max_coverage(0)
        with pytest.raises(ConfigurationError):
            index.greedy_max_coverage(4)


class TestLazyGreedyEquivalence:
    """The CELF-style lazy queue must reproduce the eager reference exactly."""

    def _random_pool(self, n, sets, max_size, seed):
        rng = np.random.default_rng(seed)
        return make_index(
            n,
            [
                rng.choice(n, size=rng.integers(1, max_size + 1), replace=False)
                for _ in range(sets)
            ],
        )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_eager_on_random_pools(self, seed):
        index = self._random_pool(n=40, sets=120, max_size=6, seed=seed)
        for budget in (1, 3, 12, 40):
            eager = index.greedy_max_coverage(budget, lazy=False)
            lazy = index.greedy_max_coverage(budget, lazy=True)
            assert eager.nodes == lazy.nodes, (seed, budget)
            assert eager.covered == lazy.covered
            assert eager.marginal_gains == lazy.marginal_gains

    def test_matches_eager_with_stop_at_coverage(self):
        index = self._random_pool(n=30, sets=80, max_size=5, seed=9)
        for stop in (1, 20, 55, 10_000):
            eager = index.greedy_max_coverage(30, stop_at_coverage=stop, lazy=False)
            lazy = index.greedy_max_coverage(30, stop_at_coverage=stop, lazy=True)
            assert eager.nodes == lazy.nodes, stop
            assert eager.covered == lazy.covered
            assert eager.marginal_gains == lazy.marginal_gains

    def test_zero_gain_padding_matches(self):
        # Budget beyond the covering nodes: both paths pad with untouched
        # nodes in ascending id order (the documented tie-break).
        index = make_index(6, [[1, 2], [2, 3]])
        eager = index.greedy_max_coverage(5, lazy=False)
        lazy = index.greedy_max_coverage(5, lazy=True)
        assert eager.nodes == lazy.nodes
        assert lazy.marginal_gains == eager.marginal_gains
        assert lazy.marginal_gains[0] > 0 and lazy.marginal_gains[-1] == 0

    def test_tie_break_prefers_smallest_node_id(self):
        index = make_index(5, [[3], [3], [1], [1], [4]])
        for lazy in (False, True):
            result = index.greedy_max_coverage(2, lazy=lazy)
            assert result.nodes[0] == 1  # gain tie between 1 and 3
