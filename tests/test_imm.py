"""Unit tests for the IMM baseline."""

import pytest

from repro.baselines.imm import imm_diagnostics, imm_influence_maximization
from repro.errors import ConfigurationError
from repro.graph import generators


class TestImm:
    def test_star_hub_selected(self, ic_model):
        g = generators.star_graph(20, probability=1.0)
        result = imm_influence_maximization(g, ic_model, k=1, seed=0, max_samples=4000)
        assert result.seeds == [0]
        assert result.estimated_spread == pytest.approx(20.0, rel=0.05)

    def test_k_seeds_distinct(self, ic_model, small_social_damped):
        result = imm_influence_maximization(
            small_social_damped, ic_model, k=4, seed=1, max_samples=4000
        )
        assert len(result.seeds) == 4
        assert len(set(result.seeds)) == 4

    def test_quality_indicator_in_unit_interval(self, ic_model, small_social_damped):
        result = imm_influence_maximization(
            small_social_damped, ic_model, k=2, seed=2, max_samples=4000
        )
        assert 0.0 <= result.certified_ratio <= 1.0

    def test_agrees_with_opim_on_spread(self, ic_model, small_social_damped):
        from repro.baselines.opim import opim_influence_maximization

        imm = imm_influence_maximization(
            small_social_damped, ic_model, k=3, seed=3, max_samples=6000
        )
        opim = opim_influence_maximization(
            small_social_damped, ic_model, k=3, seed=3, max_samples=6000
        )
        # Two independent solvers for the same problem: spreads must agree
        # within sampling noise.
        assert imm.estimated_spread == pytest.approx(opim.estimated_spread, rel=0.3)

    def test_validation(self, ic_model, path3):
        with pytest.raises(ConfigurationError):
            imm_influence_maximization(path3, ic_model, k=0)
        with pytest.raises(ConfigurationError):
            imm_influence_maximization(path3, ic_model, k=9)
        with pytest.raises(ConfigurationError):
            imm_influence_maximization(path3, ic_model, k=1, epsilon=0.0)


class TestDiagnostics:
    def test_schedule_reported(self, ic_model, small_social_damped):
        diag = imm_diagnostics(
            small_social_damped, ic_model, k=2, seed=4, max_samples=4000
        )
        assert diag.geometric_rounds >= 1
        assert diag.phase1_samples >= 1
        assert diag.phase2_samples >= 1
        assert diag.lower_bound >= 1.0

    def test_lower_bound_below_n(self, ic_model, small_social_damped):
        diag = imm_diagnostics(
            small_social_damped, ic_model, k=2, seed=5, max_samples=4000
        )
        assert diag.lower_bound <= small_social_damped.n
