"""Unit tests for edge-list and npz IO."""

import io

import pytest

from repro.errors import GraphError
from repro.graph import generators, weighting
from repro.graph.io import (
    edge_list_to_string,
    load_npz,
    read_edge_list,
    save_npz,
    write_edge_list,
)


@pytest.fixture
def weighted_graph():
    return weighting.weighted_cascade(
        generators.preferential_attachment(30, 2, seed=0, directed=False)
    )


class TestTextRoundTrip:
    def test_round_trip_preserves_graph(self, weighted_graph, tmp_path):
        path = tmp_path / "graph.txt"
        write_edge_list(weighted_graph, path)
        loaded = read_edge_list(path)
        assert loaded == weighted_graph

    def test_round_trip_via_handles(self, weighted_graph):
        buffer = io.StringIO()
        write_edge_list(weighted_graph, buffer)
        buffer.seek(0)
        assert read_edge_list(buffer) == weighted_graph

    def test_gzip_round_trip(self, weighted_graph, tmp_path):
        """SNAP dumps ship gzipped; a .gz path is handled transparently."""
        path = tmp_path / "graph.txt.gz"
        write_edge_list(weighted_graph, path)
        # Really gzip on disk, not plain text with a misleading name.
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        assert read_edge_list(path) == weighted_graph

    def test_gzip_reads_foreign_dump(self, tmp_path):
        """A gzipped edge list written by another tool parses the same."""
        import gzip

        path = tmp_path / "snap.txt.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write("# comment\n0 1 0.5\n1 2\n")
        graph = read_edge_list(path)
        assert graph.n == 3
        assert graph.m == 2
        assert graph.edge_probability(0, 1) == 0.5
        assert graph.edge_probability(1, 2) == 1.0

    def test_header_carries_node_count(self, tmp_path):
        # A trailing isolated node survives because of the header.
        g = generators.path_graph(3)
        from repro.graph.digraph import DiGraph

        g = DiGraph.from_edges(5, list(g.edges()))  # nodes 3, 4 isolated
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        assert read_edge_list(path).n == 5

    def test_missing_probability_defaults(self):
        text = "0 1\n1 2 0.25\n"
        g = read_edge_list(io.StringIO(text), default_probability=0.5)
        assert g.edge_probability(0, 1) == pytest.approx(0.5)
        assert g.edge_probability(1, 2) == pytest.approx(0.25)

    def test_comments_and_blank_lines_skipped(self):
        text = "# a comment\n\n0 1 0.5\n"
        g = read_edge_list(io.StringIO(text))
        assert g.m == 1

    def test_explicit_n_parameter(self):
        g = read_edge_list(io.StringIO("0 1 0.5\n"), n=10)
        assert g.n == 10

    def test_malformed_line_rejected(self):
        with pytest.raises(GraphError):
            read_edge_list(io.StringIO("0 1 0.5 extra junk\n"))

    def test_unparseable_numbers_rejected(self):
        with pytest.raises(GraphError):
            read_edge_list(io.StringIO("zero one\n"))

    def test_edge_list_to_string(self, weighted_graph):
        text = edge_list_to_string(weighted_graph)
        assert text.startswith("# nodes 30")
        assert len(text.splitlines()) == weighted_graph.m + 1


class TestNpzRoundTrip:
    def test_round_trip(self, weighted_graph, tmp_path):
        path = tmp_path / "graph.npz"
        save_npz(weighted_graph, path)
        assert load_npz(path) == weighted_graph

    def test_missing_arrays_rejected(self, tmp_path):
        import numpy as np

        path = tmp_path / "bad.npz"
        np.savez_compressed(path, n=np.array([3]))
        with pytest.raises(GraphError):
            load_npz(path)
