"""Unit tests for graph generators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph import generators
from repro.graph.analysis import largest_wcc_size


class TestDeterministicStructures:
    def test_path_graph(self):
        g = generators.path_graph(4, probability=0.5)
        assert g.n == 4
        assert g.m == 3
        assert g.has_edge(0, 1) and g.has_edge(2, 3)
        assert not g.has_edge(3, 2)

    def test_cycle_graph(self):
        g = generators.cycle_graph(4)
        assert g.m == 4
        assert g.has_edge(3, 0)

    def test_cycle_requires_two_nodes(self):
        with pytest.raises(ConfigurationError):
            generators.cycle_graph(1)

    def test_star_outward(self):
        g = generators.star_graph(5, outward=True)
        assert g.out_degree(0) == 4
        assert g.in_degree(0) == 0

    def test_star_inward(self):
        g = generators.star_graph(5, outward=False)
        assert g.in_degree(0) == 4
        assert g.out_degree(0) == 0

    def test_complete_graph(self):
        g = generators.complete_graph(4)
        assert g.m == 12

    def test_layered_dag(self):
        g = generators.layered_dag(3, 2)
        assert g.n == 6
        assert g.m == 2 * 2 * 2  # two layer gaps x 2x2 bipartite
        assert g.has_edge(0, 2)
        assert not g.has_edge(2, 0)

    def test_paper_example_graph_structure(self):
        g = generators.paper_example_graph()
        assert g.n == 4
        assert g.m == 4
        assert g.edge_probability(0, 1) == pytest.approx(0.5)
        assert g.edge_probability(1, 3) == pytest.approx(1.0)

    def test_figure1_graph_structure(self):
        g = generators.figure1_graph()
        assert g.n == 6
        assert g.m == 7
        assert g.edge_probability(0, 3) == pytest.approx(0.9)


class TestErdosRenyi:
    def test_size_and_degree(self):
        g = generators.erdos_renyi(200, expected_degree=5.0, seed=0)
        assert g.n == 200
        # Mean out-degree within generous tolerance of 5.
        assert 3.0 < g.m / g.n < 7.0

    def test_reproducible(self):
        a = generators.erdos_renyi(100, 4.0, seed=9)
        b = generators.erdos_renyi(100, 4.0, seed=9)
        assert a == b

    def test_no_self_loops(self):
        g = generators.erdos_renyi(80, 6.0, seed=2)
        src, dst, _ = g.edge_arrays()
        assert not np.any(src == dst)

    def test_undirected_mirrors_edges(self):
        g = generators.erdos_renyi(60, 4.0, seed=3, directed=False)
        src, dst, _ = g.edge_arrays()
        pairs = set(zip(src.tolist(), dst.tolist()))
        assert all((v, u) in pairs for u, v in pairs)

    def test_invalid_degree(self):
        with pytest.raises(ConfigurationError):
            generators.erdos_renyi(10, 0.0)
        with pytest.raises(ConfigurationError):
            generators.erdos_renyi(10, 100.0)


class TestPreferentialAttachment:
    def test_size(self):
        g = generators.preferential_attachment(150, 2, seed=1)
        assert g.n == 150
        # Each of nodes 1..149 adds up to 2 edges.
        assert g.m <= 2 * 149
        assert g.m >= 149

    def test_heavy_tail(self):
        g = generators.preferential_attachment(400, 2, seed=5, directed=False)
        degrees = g.in_degrees() + g.out_degrees()
        # A hub should exist: max degree much larger than the median.
        assert degrees.max() > 5 * np.median(degrees)

    def test_undirected_mirrors_edges(self):
        g = generators.preferential_attachment(50, 1, seed=0, directed=False)
        src, dst, _ = g.edge_arrays()
        pairs = set(zip(src.tolist(), dst.tolist()))
        assert all((v, u) in pairs for u, v in pairs)

    def test_reproducible(self):
        a = generators.preferential_attachment(80, 2, seed=4)
        b = generators.preferential_attachment(80, 2, seed=4)
        assert a == b

    def test_connected_when_undirected(self):
        g = generators.preferential_attachment(120, 2, seed=6, directed=False)
        assert largest_wcc_size(g) == 120

    def test_invalid_edges_per_node(self):
        with pytest.raises(ConfigurationError):
            generators.preferential_attachment(10, 0)


class TestChungLu:
    def test_size_and_average_degree(self):
        g = generators.chung_lu_power_law(400, average_degree=8.0, seed=0)
        assert g.n == 400
        assert 4.0 < g.m / g.n < 12.0

    def test_reproducible(self):
        a = generators.chung_lu_power_law(150, 5.0, seed=11)
        b = generators.chung_lu_power_law(150, 5.0, seed=11)
        assert a == b

    def test_heavy_tail(self):
        g = generators.chung_lu_power_law(600, 8.0, exponent=2.2, seed=3)
        degrees = g.in_degrees() + g.out_degrees()
        assert degrees.max() > 4 * max(1.0, np.median(degrees))

    def test_invalid_exponent(self):
        with pytest.raises(ConfigurationError):
            generators.chung_lu_power_law(50, 4.0, exponent=0.9)

    def test_invalid_degree(self):
        with pytest.raises(ConfigurationError):
            generators.chung_lu_power_law(50, 0.0)


class TestAttachFragments:
    def test_pads_to_total(self):
        core = generators.preferential_attachment(40, 2, seed=0, directed=False)
        g = generators.attach_fragments(core, 100, seed=1, directed=False)
        assert g.n == 100

    def test_core_edges_preserved(self):
        core = generators.path_graph(3)
        g = generators.attach_fragments(core, 10, seed=1, directed=True)
        assert g.has_edge(0, 1) and g.has_edge(1, 2)

    def test_no_isolated_nodes_directed(self):
        core = generators.cycle_graph(4)
        g = generators.attach_fragments(core, 30, seed=2, directed=True)
        total_degree = g.in_degrees() + g.out_degrees()
        assert total_degree.min() >= 1

    def test_directed_fragments_have_indegree(self):
        # Weighted cascade divides by indegree, so fragment nodes need >= 1.
        core = generators.cycle_graph(4)
        g = generators.attach_fragments(core, 30, seed=2, directed=True)
        assert g.in_degrees().min() >= 1

    def test_fragments_disconnected_from_core(self):
        core = generators.cycle_graph(4)
        g = generators.attach_fragments(core, 20, seed=3, directed=True)
        assert largest_wcc_size(g) <= max(4, 4)  # core stays the largest WCC

    def test_identity_when_total_equals_core(self):
        core = generators.cycle_graph(5)
        assert generators.attach_fragments(core, 5, seed=0) == core

    def test_total_below_core_rejected(self):
        core = generators.cycle_graph(5)
        with pytest.raises(ConfigurationError):
            generators.attach_fragments(core, 3, seed=0)
