"""Unit tests for the structural graph metrics."""

import numpy as np
import pytest

from repro.errors import GraphError, NodeNotFoundError
from repro.graph import generators
from repro.graph.builder import GraphBuilder
from repro.graph.metrics import (
    average_clustering_coefficient,
    estimated_average_distance,
    hop_histogram,
    largest_scc_size,
    reciprocity,
    strongly_connected_components,
    structural_profile,
)


class TestSCC:
    def test_cycle_is_one_scc(self):
        g = generators.cycle_graph(6)
        labels = strongly_connected_components(g)
        assert len(np.unique(labels)) == 1
        assert largest_scc_size(g) == 6

    def test_path_is_singletons(self):
        g = generators.path_graph(5)
        labels = strongly_connected_components(g)
        assert len(np.unique(labels)) == 5
        assert largest_scc_size(g) == 1

    def test_two_cycles_bridge(self):
        # Cycle {0,1,2} -> bridge -> cycle {3,4,5}: two SCCs of size 3.
        builder = GraphBuilder(6)
        builder.add_path([0, 1, 2], 1.0).add_edge(2, 0, 1.0)
        builder.add_path([3, 4, 5], 1.0).add_edge(5, 3, 1.0)
        builder.add_edge(2, 3, 1.0)
        g = builder.build()
        labels = strongly_connected_components(g)
        assert len(np.unique(labels)) == 2
        assert largest_scc_size(g) == 3

    def test_mirrored_graph_fully_strongly_connected(self):
        g = generators.preferential_attachment(80, 2, seed=0, directed=False)
        assert largest_scc_size(g) == 80

    def test_deep_chain_no_recursion_limit(self):
        # The iterative Tarjan must handle paths longer than the Python
        # recursion limit.
        g = generators.path_graph(5000)
        assert largest_scc_size(g) == 1

    def test_empty_graph(self):
        from repro.graph.digraph import DiGraph

        assert largest_scc_size(DiGraph.from_edges(0, [])) == 0


class TestReciprocity:
    def test_mirrored_is_one(self):
        g = generators.preferential_attachment(40, 2, seed=1, directed=False)
        assert reciprocity(g) == pytest.approx(1.0)

    def test_dag_is_zero(self):
        g = generators.path_graph(5)
        assert reciprocity(g) == 0.0

    def test_half_mutual(self):
        builder = GraphBuilder(3)
        builder.add_edge(0, 1, 0.5)
        builder.add_edge(1, 0, 0.5)
        builder.add_edge(0, 2, 0.5)
        builder.add_edge(2, 1, 0.5)
        assert reciprocity(builder.build()) == pytest.approx(0.5)

    def test_empty(self):
        from repro.graph.digraph import DiGraph

        assert reciprocity(DiGraph.from_edges(3, [])) == 0.0


class TestClustering:
    def test_triangle_is_one(self):
        builder = GraphBuilder(3)
        builder.add_undirected_edge(0, 1, 0.5)
        builder.add_undirected_edge(1, 2, 0.5)
        builder.add_undirected_edge(0, 2, 0.5)
        assert average_clustering_coefficient(builder.build()) == pytest.approx(1.0)

    def test_star_is_zero(self):
        g = generators.star_graph(6, probability=1.0)
        assert average_clustering_coefficient(g) == 0.0

    def test_sampling_close_to_exact(self):
        g = generators.preferential_attachment(120, 2, seed=2, directed=False)
        exact = average_clustering_coefficient(g)
        sampled = average_clustering_coefficient(g, sample_nodes=80, seed=0)
        assert sampled == pytest.approx(exact, abs=0.15)


class TestHops:
    def test_path_histogram(self):
        g = generators.path_graph(4)
        assert hop_histogram(g, 0) == [1, 1, 1, 1]
        assert hop_histogram(g, 3) == [1]

    def test_star_histogram(self):
        g = generators.star_graph(6, probability=1.0)
        assert hop_histogram(g, 0) == [1, 5]

    def test_max_hops_truncates(self):
        g = generators.path_graph(10)
        assert hop_histogram(g, 0, max_hops=3) == [1, 1, 1, 1]

    def test_invalid_source(self):
        g = generators.path_graph(3)
        with pytest.raises(NodeNotFoundError):
            hop_histogram(g, 7)


class TestAverageDistance:
    def test_small_world_range(self):
        g = generators.preferential_attachment(300, 2, seed=3, directed=False)
        distance = estimated_average_distance(g, samples=20, seed=0)
        assert 1.0 < distance < 8.0

    def test_edgeless_is_nan(self):
        from repro.graph.digraph import DiGraph

        g = DiGraph.from_edges(5, [])
        assert np.isnan(estimated_average_distance(g, samples=4, seed=0))

    def test_invalid_samples(self):
        g = generators.path_graph(3)
        with pytest.raises(GraphError):
            estimated_average_distance(g, samples=0)


class TestStructuralProfile:
    def test_profile_bundle(self):
        g = generators.preferential_attachment(100, 2, seed=4, directed=False)
        profile = structural_profile(g, clustering_sample=50, distance_samples=8)
        assert profile.n == 100
        assert profile.largest_scc == 100  # mirrored edges
        assert profile.reciprocity == pytest.approx(1.0)
        assert 0.0 <= profile.clustering <= 1.0
        assert profile.average_distance > 1.0

    def test_directed_dataset_less_reciprocal(self):
        from repro.experiments import datasets

        directed = datasets.load_dataset("epinions-sim", n=200, seed=0)
        undirected = datasets.load_dataset("nethept-sim", n=200, seed=0)
        assert reciprocity(directed) < reciprocity(undirected)
