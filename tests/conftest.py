"""Shared fixtures: small graphs with hand-computable spreads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.diffusion.ic import IndependentCascade
from repro.diffusion.lt import LinearThreshold
from repro.graph.builder import GraphBuilder
from repro.graph import generators, weighting


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def ic_model():
    return IndependentCascade()


@pytest.fixture
def lt_model():
    return LinearThreshold()


@pytest.fixture
def path3():
    """0 -> 1 -> 2, all certain."""
    return generators.path_graph(3, probability=1.0)


@pytest.fixture
def path5_half():
    """0 -> 1 -> 2 -> 3 -> 4 with p = 0.5 everywhere."""
    return generators.path_graph(5, probability=0.5)


@pytest.fixture
def star6():
    """Hub 0 pointing at 5 leaves, all certain."""
    return generators.star_graph(6, probability=1.0)


@pytest.fixture
def paper_example():
    """Figure 2 / Example 2.3 graph: the truncated-vs-vanilla showcase."""
    return generators.paper_example_graph()


@pytest.fixture
def diamond():
    """0 -> {1, 2} -> 3 with certain edges (LT-invalid at node 3)."""
    builder = GraphBuilder(4)
    builder.add_edge(0, 1, 1.0)
    builder.add_edge(0, 2, 1.0)
    builder.add_edge(1, 3, 1.0)
    builder.add_edge(2, 3, 1.0)
    return builder.build()


@pytest.fixture
def two_components():
    """Two disjoint certain paths: 0 -> 1 and 2 -> 3."""
    builder = GraphBuilder(4)
    builder.add_edge(0, 1, 1.0)
    builder.add_edge(2, 3, 1.0)
    return builder.build()


@pytest.fixture
def small_social():
    """A 120-node weighted-cascade graph for integration-ish unit tests."""
    topology = generators.preferential_attachment(120, 2, seed=42, directed=False)
    return weighting.weighted_cascade(topology)


@pytest.fixture
def small_social_damped():
    """Same topology with damped probabilities (multi-round regime)."""
    topology = generators.preferential_attachment(120, 2, seed=42, directed=False)
    return weighting.scaled_cascade(topology, 0.5)
