"""Unit tests for the independent cascade model."""

import numpy as np
import pytest

from repro.diffusion.ic import IndependentCascade
from repro.graph import generators


@pytest.fixture
def model():
    return IndependentCascade()


class TestSimulate:
    def test_certain_path_activates_everything(self, model, path3, rng):
        active = model.simulate(path3, [0], rng)
        assert active.all()

    def test_direction_respected(self, model, path3, rng):
        active = model.simulate(path3, [2], rng)
        assert active.tolist() == [False, False, True]

    def test_seeds_always_active(self, model, path5_half, rng):
        active = model.simulate(path5_half, [2], rng)
        assert active[2]

    def test_multiple_seeds(self, model, two_components, rng):
        active = model.simulate(two_components, [0, 2], rng)
        assert active.all()

    def test_invalid_seed(self, model, path3, rng):
        from repro.errors import NodeNotFoundError

        with pytest.raises(NodeNotFoundError):
            model.simulate(path3, [99], rng)

    def test_probability_honored_statistically(self, model, rng):
        # Single edge with p = 0.3: activation frequency should match.
        g = generators.path_graph(2, probability=0.3)
        hits = sum(model.simulate(g, [0], rng)[1] for _ in range(2000))
        assert 0.25 < hits / 2000 < 0.35

    def test_spread_helper(self, model, star6, rng):
        assert model.spread(star6, [0], rng) == 6


class TestSampleRealization:
    def test_certain_edges_always_live(self, model, path3, rng):
        phi = model.sample_realization(path3, rng)
        assert phi.live_edge_count() == 2

    def test_live_fraction_matches_probability(self, model, rng):
        g = generators.complete_graph(20, probability=0.25)
        counts = [
            model.sample_realization(g, rng).live_edge_count() for _ in range(50)
        ]
        fraction = np.mean(counts) / g.m
        assert 0.2 < fraction < 0.3

    def test_realization_replay_deterministic(self, model, path5_half, rng):
        phi = model.sample_realization(path5_half, rng)
        first = phi.reachable_from([0])
        second = phi.reachable_from([0])
        assert np.array_equal(first, second)


class TestReverseSample:
    def test_visits_reach_root_only(self, model, path3, rng):
        scratch = np.zeros(3, dtype=bool)
        visited = model.reverse_sample(path3, np.array([2]), rng, scratch)
        # Certain path: everything reaches node 2.
        assert sorted(visited.tolist()) == [0, 1, 2]
        assert not scratch.any()  # buffer restored

    def test_respects_direction(self, model, path3, rng):
        scratch = np.zeros(3, dtype=bool)
        visited = model.reverse_sample(path3, np.array([0]), rng, scratch)
        assert visited.tolist() == [0]

    def test_multi_root_union(self, model, two_components, rng):
        scratch = np.zeros(4, dtype=bool)
        visited = model.reverse_sample(two_components, np.array([1, 3]), rng, scratch)
        assert sorted(visited.tolist()) == [0, 1, 2, 3]

    def test_rr_set_unbiasedness_on_tiny_graph(self, model, rng):
        # For the certain star, a random RR set from a uniform root contains
        # the hub with probability 1, so the estimated spread of {hub} is n.
        g = generators.star_graph(4, probability=1.0)
        scratch = np.zeros(4, dtype=bool)
        hits = 0
        trials = 400
        for _ in range(trials):
            root = np.array([rng.integers(4)])
            visited = model.reverse_sample(g, root, rng, scratch)
            hits += 0 in visited
        assert hits == trials

    def test_scratch_reset_after_each_call(self, model, small_social, rng):
        scratch = np.zeros(small_social.n, dtype=bool)
        for _ in range(20):
            model.reverse_sample(
                small_social, np.array([rng.integers(small_social.n)]), rng, scratch
            )
            assert not scratch.any()
