"""Unit tests for the topic-aware IC extension."""

import numpy as np
import pytest

from repro.core.asti import ASTI
from repro.diffusion.topic import (
    TopicAwareGraph,
    TopicAwareIC,
    TopicMixture,
    effective_probability_bounds,
)
from repro.errors import ConfigurationError
from repro.graph import generators, weighting


@pytest.fixture
def topology():
    return generators.preferential_attachment(60, 2, seed=1, directed=False)


@pytest.fixture
def taw(topology):
    weighted = weighting.weighted_cascade(topology)
    return TopicAwareGraph.random(weighted, num_topics=3, seed=2)


class TestTopicMixture:
    def test_single(self):
        m = TopicMixture.single(1, 3)
        assert m.weights == (0.0, 1.0, 0.0)
        assert m.num_topics == 3

    def test_uniform(self):
        m = TopicMixture.uniform(4)
        assert sum(m.weights) == pytest.approx(1.0)
        assert len(set(m.weights)) == 1

    def test_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            TopicMixture((0.5, 0.2))

    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            TopicMixture((-0.1, 1.1))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            TopicMixture(())

    def test_single_out_of_range(self):
        with pytest.raises(ConfigurationError):
            TopicMixture.single(3, 3)


class TestTopicAwareGraph:
    def test_random_shape(self, taw, topology):
        assert taw.num_topics == 3
        assert taw.topic_probabilities.shape == (topology.m, 3)
        assert taw.n == topology.n

    def test_collapse_preserves_topology(self, taw):
        graph = taw.collapse(TopicMixture.uniform(3))
        assert graph.n == taw.n
        assert graph.m == taw.m

    def test_collapse_is_mixture(self, taw):
        # Pure-topic collapse equals the corresponding probability column.
        graph = taw.collapse(TopicMixture.single(0, 3))
        _, _, probs = graph.edge_arrays()
        expected = np.clip(taw.topic_probabilities[:, 0], 1e-12, 1.0)
        # edge_arrays() order matches the topology's canonical order.
        assert np.allclose(sorted(probs), sorted(expected))

    def test_uniform_item_averages_topic_columns(self, topology):
        # The uniform mixture is the per-edge mean of the topic columns
        # (exactly; clipping happens per topic column at construction).
        weighted = weighting.weighted_cascade(topology)
        taw = TopicAwareGraph.random(weighted, num_topics=4, seed=3)
        collapsed = taw.collapse(TopicMixture.uniform(4))
        _, _, collapsed_probs = collapsed.edge_arrays()
        expected = np.clip(taw.topic_probabilities.mean(axis=1), 1e-12, 1.0)
        assert np.allclose(collapsed_probs, expected)

    def test_average_item_tracks_scalar_graph(self, topology):
        # Dirichlet redistribution preserves scalar probabilities up to the
        # per-topic clipping at 1, so means stay close.
        weighted = weighting.weighted_cascade(topology)
        taw = TopicAwareGraph.random(weighted, num_topics=4, seed=3)
        collapsed = taw.collapse(TopicMixture.uniform(4))
        _, _, collapsed_probs = collapsed.edge_arrays()
        _, _, scalar_probs = weighted.edge_arrays()
        assert collapsed_probs.mean() == pytest.approx(scalar_probs.mean(), rel=0.1)

    def test_mixture_topic_count_checked(self, taw):
        with pytest.raises(ConfigurationError):
            taw.collapse(TopicMixture.uniform(2))

    def test_bad_probability_matrix(self, topology):
        with pytest.raises(ConfigurationError):
            TopicAwareGraph(topology, np.ones((topology.m, 2)) * 1.5)
        with pytest.raises(ConfigurationError):
            TopicAwareGraph(topology, np.ones((3, 2)) * 0.1)


class TestTopicAwareIC:
    def test_for_item_runs_asti(self, taw):
        model, graph = TopicAwareIC.for_item(taw, TopicMixture.uniform(3))
        result = ASTI(model, epsilon=0.5, max_samples=4000).run(graph, eta=8, seed=5)
        assert result.spread >= 8

    def test_items_see_different_graphs(self, taw):
        _, g0 = TopicAwareIC.for_item(taw, TopicMixture.single(0, 3))
        _, g1 = TopicAwareIC.for_item(taw, TopicMixture.single(1, 3))
        _, p0 = g0.edge_arrays()[0], g0.edge_arrays()[2]
        _, p1 = g1.edge_arrays()[0], g1.edge_arrays()[2]
        assert not np.allclose(p0, p1)

    def test_model_name(self):
        assert TopicAwareIC(TopicMixture.uniform(2)).name == "TIC"


class TestBounds:
    def test_bounds_ordered(self, taw):
        low, high = effective_probability_bounds(
            taw, [TopicMixture.single(t, 3) for t in range(3)]
        )
        assert 0.0 <= low <= high <= 1.0

    def test_empty_mixtures_rejected(self, taw):
        with pytest.raises(ConfigurationError):
            effective_probability_bounds(taw, [])
