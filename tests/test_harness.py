"""Unit tests for the multi-realization comparison harness."""

import pytest

from repro.diffusion.ic import IndependentCascade
from repro.errors import ConfigurationError
from repro.experiments.config import quick_config
from repro.experiments.harness import (
    build_algorithm,
    run_eta_point,
    run_sweep,
    sample_shared_realizations,
)


@pytest.fixture(scope="module")
def tiny_sweep():
    config = quick_config(
        graph_n=150,
        realizations=3,
        algorithms=("ASTI", "ASTI-4", "ATEUC"),
        eta_fractions=(0.05, 0.15),
        max_samples=4000,
        seed=0,
    )
    return run_sweep(config)


class TestBuildAlgorithm:
    def test_labels(self, ic_model):
        assert build_algorithm("ASTI", ic_model, 0.5, None).name == "ASTI"
        assert build_algorithm("ASTI-8", ic_model, 0.5, None).name == "ASTI-8"
        assert build_algorithm("AdaptIM", ic_model, 0.5, None).name == "AdaptIM"
        assert build_algorithm("ATEUC", ic_model, 0.5, None).name == "ATEUC"

    def test_unknown_label(self, ic_model):
        with pytest.raises(ConfigurationError):
            build_algorithm("IMM", ic_model, 0.5, None)


class TestSharedRealizations:
    def test_count_and_reproducibility(self, small_social_damped):
        model = IndependentCascade()
        a = sample_shared_realizations(small_social_damped, model, 4, seed=1)
        b = sample_shared_realizations(small_social_damped, model, 4, seed=1)
        assert len(a) == 4
        for phi_a, phi_b in zip(a, b):
            assert phi_a.spread([0]) == phi_b.spread([0])

    def test_independent_worlds_differ(self, small_social_damped):
        model = IndependentCascade()
        worlds = sample_shared_realizations(small_social_damped, model, 8, seed=2)
        counts = {phi.live_edge_count() for phi in worlds}
        assert len(counts) > 1


class TestRunEtaPoint:
    def test_adaptive_always_feasible(self, small_social_damped):
        model = IndependentCascade()
        worlds = sample_shared_realizations(small_social_damped, model, 3, seed=3)
        outcomes = run_eta_point(
            small_social_damped, model, 15, ("ASTI",), worlds, max_samples=4000
        )
        assert outcomes["ASTI"].always_feasible
        assert len(outcomes["ASTI"].runs) == 3

    def test_ateuc_single_selection(self, small_social_damped):
        model = IndependentCascade()
        worlds = sample_shared_realizations(small_social_damped, model, 4, seed=4)
        outcomes = run_eta_point(
            small_social_damped, model, 15, ("ATEUC",), worlds, max_samples=4000
        )
        counts = {r.seed_count for r in outcomes["ATEUC"].runs}
        assert len(counts) == 1  # one fixed seed set evaluated everywhere

    def test_celf_roster_entry(self, small_social_damped):
        model = IndependentCascade()
        worlds = sample_shared_realizations(small_social_damped, model, 3, seed=4)
        outcomes = run_eta_point(
            small_social_damped, model, 15, ("CELF",), worlds, mc_batch_size=64
        )
        counts = {r.seed_count for r in outcomes["CELF"].runs}
        assert len(counts) == 1  # non-adaptive: one selection, many worlds
        assert len(outcomes["CELF"].runs) == 3
        assert all(r.seed_count >= 1 for r in outcomes["CELF"].runs)


class TestSweep:
    def test_structure(self, tiny_sweep):
        assert len(tiny_sweep.eta_values) == 2
        for eta in tiny_sweep.eta_values:
            assert set(tiny_sweep.outcomes[eta]) == {"ASTI", "ASTI-4", "ATEUC"}

    def test_series_extraction(self, tiny_sweep):
        seeds = tiny_sweep.series("ASTI", "seeds")
        seconds = tiny_sweep.series("ASTI", "seconds")
        feasibility = tiny_sweep.series("ASTI", "feasibility")
        assert len(seeds) == 2
        assert all(s >= 1 for s in seeds)
        assert all(t >= 0 for t in seconds)
        assert feasibility == [1.0, 1.0]  # adaptive is always feasible

    def test_seeds_monotone_in_eta(self, tiny_sweep):
        seeds = tiny_sweep.series("ASTI", "seeds")
        assert seeds[0] <= seeds[1]

    def test_unknown_metric(self, tiny_sweep):
        with pytest.raises(ConfigurationError):
            tiny_sweep.series("ASTI", "happiness")

    def test_spread_meets_eta_for_adaptive(self, tiny_sweep):
        for eta in tiny_sweep.eta_values:
            assert tiny_sweep.outcomes[eta]["ASTI"].mean_spread >= eta
