"""Unit tests for the concentration bounds (paper Appendix A)."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sampling.bounds import (
    chernoff_lower_tail,
    chernoff_upper_tail,
    coverage_lower_bound,
    coverage_upper_bound,
    log_binomial,
)


class TestCoverageBounds:
    def test_lower_below_upper(self):
        for coverage in (0, 1, 5, 50, 500, 5000):
            for a in (0.5, 2.0, 10.0):
                assert coverage_lower_bound(coverage, a) <= coverage_upper_bound(
                    coverage, a
                )

    def test_lower_bound_below_observation(self):
        # The LB corrects downward from the observation.
        for coverage in (10, 100, 1000):
            assert coverage_lower_bound(coverage, 5.0) <= coverage

    def test_upper_bound_above_observation(self):
        for coverage in (0, 10, 100, 1000):
            assert coverage_upper_bound(coverage, 5.0) >= coverage

    def test_bounds_tighten_relatively_with_coverage(self):
        # Relative slack shrinks as the observation grows.
        a = 5.0
        def relative_gap(c):
            return (coverage_upper_bound(c, a) - coverage_lower_bound(c, a)) / c

        assert relative_gap(10000) < relative_gap(100) < relative_gap(10)

    def test_lower_bound_clamped_at_zero(self):
        assert coverage_lower_bound(0, 10.0) == pytest.approx(0.0, abs=1e-12)

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            coverage_lower_bound(-1, 1.0)
        with pytest.raises(ConfigurationError):
            coverage_upper_bound(1, 0.0)

    def test_empirical_validity_lower(self, rng):
        # Binomial coverage: the LB should hold with prob >= 1 - e^-a.
        a = 3.0
        failures = 0
        trials = 400
        theta, p = 200, 0.3
        for _ in range(trials):
            observed = rng.binomial(theta, p)
            if coverage_lower_bound(observed, a) > theta * p:
                failures += 1
        assert failures / trials <= math.exp(-a) + 0.03

    def test_empirical_validity_upper(self, rng):
        a = 3.0
        failures = 0
        trials = 400
        theta, p = 200, 0.3
        for _ in range(trials):
            observed = rng.binomial(theta, p)
            if coverage_upper_bound(observed, a) < theta * p:
                failures += 1
        assert failures / trials <= math.exp(-a) + 0.03


class TestChernoffTails:
    def test_decreasing_in_deviation(self):
        p1 = chernoff_upper_tail(0.5, 0.1, 100)
        p2 = chernoff_upper_tail(0.5, 0.2, 100)
        assert p2 < p1

    def test_decreasing_in_samples(self):
        p1 = chernoff_lower_tail(0.5, 0.1, 100)
        p2 = chernoff_lower_tail(0.5, 0.1, 1000)
        assert p2 < p1

    def test_bounded_by_one(self):
        assert chernoff_upper_tail(0.5, 0.0, 10) == 1.0
        assert chernoff_lower_tail(0.5, 0.0, 10) == 1.0

    def test_zero_mean_lower_tail(self):
        assert chernoff_lower_tail(0.0, 0.1, 10) == 0.0

    def test_empirically_valid(self, rng):
        # Pr[mean of Bernoulli(0.4) over T > 0.4 + 0.1] <= bound.
        T, p, lam = 200, 0.4, 0.1
        bound = chernoff_upper_tail(p, lam, T)
        exceed = np.mean([
            rng.binomial(T, p) / T > p + lam for _ in range(2000)
        ])
        assert exceed <= bound + 0.02

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            chernoff_upper_tail(0.5, -0.1, 10)
        with pytest.raises(ConfigurationError):
            chernoff_lower_tail(0.5, 0.1, 0)


class TestLogBinomial:
    def test_small_values(self):
        assert log_binomial(5, 2) == pytest.approx(math.log(10))
        assert log_binomial(10, 0) == pytest.approx(0.0)
        assert log_binomial(10, 10) == pytest.approx(0.0)

    def test_symmetry(self):
        assert log_binomial(20, 4) == pytest.approx(log_binomial(20, 16))

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            log_binomial(3, 5)
        with pytest.raises(ConfigurationError):
            log_binomial(-1, 0)
