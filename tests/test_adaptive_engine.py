"""Tests for the batched adaptive-session engine and mRR pool carry-over.

Covers the two equivalence guarantees the engine makes:

* with ``reuse_pool=False`` a batched run is *bit-identical* to running the
  sessions sequentially through :func:`run_adaptive_policy` on the same
  per-session random streams;
* with ``reuse_pool=True`` (carry-over) every session still reaches its
  target and selects the same number of seeds as the from-scratch path.
"""

import numpy as np
import pytest

from repro.core.asti import ASTI, run_adaptive_policy, run_adaptive_policy_batch
from repro.core.policy import FirstNodeSelector
from repro.core.session import AdaptiveSession
from repro.core.trim import TrimSelector
from repro.core.trim_b import TrimBSelector
from repro.diffusion.realization import ICRealization
from repro.errors import ConfigurationError
from repro.graph import generators, weighting
from repro.graph.residual import initial_residual
from repro.utils.rng import spawn_generators


@pytest.fixture
def social(ic_model):
    topology = generators.preferential_attachment(150, 2, seed=3, directed=False)
    return weighting.scaled_cascade(topology, 0.5)


def shared_worlds(model, graph, count, seed=50):
    return [model.sample_realization(graph, seed=seed + i) for i in range(count)]


class TestBatchDriverEquivalence:
    ETA = 30

    def _sequential(self, graph, model, selector, phis, seed):
        streams = spawn_generators(seed, len(phis))
        return [
            run_adaptive_policy(
                graph, self.ETA, model, selector, realization=phi, seed=rng
            )
            for phi, rng in zip(phis, streams)
        ]

    @pytest.mark.parametrize("make_selector", [
        lambda m: TrimSelector(m, reuse_pool=False),
        lambda m: TrimBSelector(m, b=3, reuse_pool=False),
        lambda m: FirstNodeSelector(),
    ])
    def test_reuse_off_matches_sequential_exactly(
        self, ic_model, social, make_selector
    ):
        phis = shared_worlds(ic_model, social, 4)
        sequential = self._sequential(
            social, ic_model, make_selector(ic_model), phis, seed=9
        )
        batched = run_adaptive_policy_batch(
            social,
            self.ETA,
            ic_model,
            make_selector(ic_model),
            phis,
            seeds=spawn_generators(9, len(phis)),
        )
        for a, b in zip(sequential, batched):
            assert a.seeds == b.seeds
            assert a.spread == b.spread
            assert len(a.rounds) == len(b.rounds)

    @pytest.mark.parametrize("batch_size", [1, 3])
    def test_reuse_on_matches_seed_counts(self, ic_model, social, batch_size):
        phis = shared_worlds(ic_model, social, 4)
        scratch = ASTI(ic_model, batch_size=batch_size, reuse_pool=False)
        fresh = self._sequential(social, ic_model, scratch.selector, phis, seed=9)
        carried = run_adaptive_policy_batch(
            social,
            self.ETA,
            ic_model,
            ASTI(ic_model, batch_size=batch_size, reuse_pool=True).selector,
            phis,
            seeds=spawn_generators(9, len(phis)),
        )
        for a, b in zip(fresh, carried):
            assert b.spread >= self.ETA
            assert b.seed_count == a.seed_count

    def test_reuse_on_actually_carries(self, ic_model, social):
        # eta/n = 0.5 keeps the root-count rule in one regime for many
        # rounds, so pools must actually carry (fewer fresh samples); the
        # small-eta regimes legitimately fall back nearly every round.
        eta = social.n // 2
        phis = shared_worlds(ic_model, social, 3)
        fresh = run_adaptive_policy_batch(
            social, eta, ic_model,
            TrimSelector(ic_model, reuse_pool=False), phis, seeds=1,
        )
        carried = run_adaptive_policy_batch(
            social, eta, ic_model,
            TrimSelector(ic_model, reuse_pool=True), phis, seeds=1,
        )
        assert sum(r.total_samples for r in carried) < sum(
            r.total_samples for r in fresh
        )

    def test_run_batch_facade_renames(self, ic_model, social):
        phis = shared_worlds(ic_model, social, 2)
        results = ASTI(ic_model, batch_size=4).run_batch(
            social, self.ETA, phis, seeds=3
        )
        assert [r.policy_name for r in results] == ["ASTI-4", "ASTI-4"]
        assert all(r.spread >= self.ETA for r in results)

    def test_seed_stream_count_mismatch(self, ic_model, social):
        phis = shared_worlds(ic_model, social, 2)
        with pytest.raises(ConfigurationError):
            run_adaptive_policy_batch(
                social, 10, ic_model, FirstNodeSelector(), phis,
                seeds=spawn_generators(0, 3),
            )
        # Any non-scalar sequence counts as per-session sources, arrays too.
        with pytest.raises(ConfigurationError):
            run_adaptive_policy_batch(
                social, 10, ic_model, FirstNodeSelector(), phis,
                seeds=np.arange(3),
            )

    def test_carry_diagnostics_surface_in_rounds(self, ic_model, social):
        eta = social.n // 2
        phis = shared_worlds(ic_model, social, 2)
        results = run_adaptive_policy_batch(
            social, eta, ic_model,
            TrimSelector(ic_model, reuse_pool=True), phis, seeds=1,
        )
        for result in results:
            assert result.rounds[0].samples_carried == 0  # nothing to reuse yet
            if len(result.rounds) > 1:
                assert result.total_samples_carried == sum(
                    r.samples_carried for r in result.rounds
                )
        # The selector-level diagnostics expose the full drop accounting.
        from repro.graph.residual import initial_residual

        selector = TrimSelector(ic_model, reuse_pool=True)
        rng = np.random.default_rng(2)
        residual = initial_residual(social, eta)
        first, carry = selector.select_with_pool(residual, rng)
        assert first.diagnostics.carry is None  # no pool was offered
        second, _ = selector.select_with_pool(residual, rng, carry)
        assert second.diagnostics.carry is not None
        assert second.diagnostics.carry.sets_offered == len(carry)


class TestAdaptiveEdgeCases:
    def test_round_exactly_exhausts_shortfall(self, path3):
        # eta = 3 and the certain world activates exactly 3 nodes: the
        # shortfall must floor at 0 and `finished` must flip true.
        phi = ICRealization(path3, np.ones(path3.m, dtype=bool))
        session = AdaptiveSession(path3, eta=3, realization=phi)
        observation = session.observe([0])
        assert observation.shortfall_before == 3
        assert observation.marginal_spread == 3
        assert session.residual.shortfall == 0
        assert session.finished

    def test_overshooting_round_floors_shortfall(self, path3):
        phi = ICRealization(path3, np.ones(path3.m, dtype=bool))
        session = AdaptiveSession(path3, eta=2, realization=phi)
        session.observe([0])  # activates 3 > eta = 2
        assert session.residual.shortfall == 0
        assert session.finished

    def test_trim_single_node_fast_path_reports_zero_samples(self, ic_model):
        graph = generators.path_graph(1)
        selection, carry = TrimSelector(ic_model).select_with_pool(
            initial_residual(graph, 1), np.random.default_rng(0)
        )
        assert selection.nodes == [0]
        assert selection.diagnostics.samples_generated == 0
        assert selection.diagnostics.samples_carried == 0
        assert carry is None

    def test_single_node_rounds_aggregate_cleanly(self, ic_model, tmp_path):
        # A run whose final rounds hit the n == 1 fast path must flow
        # through report/export aggregation without special-casing.
        from repro.experiments.config import quick_config
        from repro.experiments.export import write_sweep_csv, write_sweep_json
        from repro.experiments.harness import run_sweep

        config = quick_config(
            graph_n=40,
            realizations=2,
            algorithms=("ASTI",),
            eta_fractions=(0.9,),
            max_samples=2_000,
        )
        sweep = run_sweep(config)
        outcome = sweep.outcomes[sweep.eta_values[0]]["ASTI"]
        assert all(run.achieved for run in outcome.runs)
        rows = write_sweep_csv(sweep, tmp_path / "runs.csv")
        assert rows == len(outcome.runs)
        write_sweep_json(sweep, tmp_path / "summary.json")
        assert (tmp_path / "summary.json").exists()

    def test_max_rounds_exhaustion_raises_not_hangs(self, ic_model):
        graph = generators.path_graph(6, probability=0.01)
        phis = [
            ICRealization(graph, np.zeros(graph.m, dtype=bool))
            for _ in range(2)
        ]
        with pytest.raises(ConfigurationError, match="exceeded 2 rounds"):
            run_adaptive_policy_batch(
                graph, 5, ic_model, FirstNodeSelector(), phis,
                seeds=0, max_rounds=2,
            )

    def test_lt_model_batch(self, lt_model):
        graph = weighting.weighted_cascade(
            generators.preferential_attachment(100, 2, seed=4, directed=False)
        )
        phis = [lt_model.sample_realization(graph, seed=i) for i in range(3)]
        results = ASTI(lt_model).run_batch(graph, 10, phis, seeds=2)
        assert all(r.spread >= 10 for r in results)
