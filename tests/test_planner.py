"""The calibration-driven execution planner: picks, fallbacks, gating."""

from __future__ import annotations

import json

import pytest

from repro.graph import generators, weighting
from repro.runtime.context import ExecutionContext
from repro.runtime.planner import (
    CALIBRATION_VERSION,
    CalibrationEntry,
    CalibrationTable,
    GraphStats,
    fixture_distance,
    plan,
    static_plan,
)


@pytest.fixture
def graph():
    topology = generators.preferential_attachment(500, 3, seed=1, directed=False)
    return weighting.weighted_cascade(topology)


def entry(n=500, m=2982, batch=256, jobs=1, seconds=1.0, model="IC", **kwargs):
    return CalibrationEntry(
        n=n,
        m=m,
        degree_skew=kwargs.get("degree_skew", 5.0),
        model=model,
        sample_batch_size=batch,
        mc_batch_size=kwargs.get("mc_batch_size"),
        jobs=jobs,
        kernel_backend=kwargs.get("kernel_backend", "auto"),
        seconds=seconds,
    )


def table_for(graph, *entries):
    sized = [
        CalibrationEntry(
            n=graph.n, m=graph.m, degree_skew=e.degree_skew, model=e.model,
            sample_batch_size=e.sample_batch_size, mc_batch_size=e.mc_batch_size,
            jobs=e.jobs, kernel_backend=e.kernel_backend, seconds=e.seconds,
        )
        for e in entries
    ]
    return CalibrationTable(entries=tuple(sized))


class TestFallbacks:
    def test_no_calibration_uses_heuristic(self, graph):
        decision = plan(graph, "IC")
        assert decision.source == "heuristic"
        assert "no calibration data" in decision.reason
        assert decision.sample_batch_size >= 64

    def test_unreadable_file_falls_back(self, graph, tmp_path):
        decision = plan(graph, "IC", calibration=str(tmp_path / "missing.json"))
        assert decision.source == "heuristic"
        assert "unreadable" in decision.reason

    def test_malformed_file_falls_back(self, graph, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 1, "entries": [{"n": "oops"}]}')
        decision = plan(graph, "IC", calibration=str(path))
        assert decision.source == "heuristic"

    def test_stale_version_falls_back(self, graph):
        table = CalibrationTable(
            entries=(entry(),), version=CALIBRATION_VERSION + 1
        )
        decision = plan(graph, "IC", calibration=table)
        assert decision.source == "heuristic"
        assert "stale schema" in decision.reason

    def test_empty_table_falls_back(self, graph):
        decision = plan(graph, "IC", calibration=CalibrationTable(entries=()))
        assert decision.source == "heuristic"
        assert "empty" in decision.reason

    def test_wrong_model_falls_back(self, graph):
        table = table_for(graph, entry(model="LT"))
        decision = plan(graph, "IC", calibration=table)
        assert decision.source == "heuristic"
        assert "no calibration fixture" in decision.reason

    def test_distant_fixture_falls_back(self, graph):
        table = CalibrationTable(entries=(entry(n=5_000_000, m=80_000_000),))
        decision = plan(graph, "IC", calibration=table)
        assert decision.source == "heuristic"

    def test_heuristic_is_deterministic(self, graph):
        a = plan(graph, "IC")
        b = plan(graph, "IC")
        assert a == b


class TestCalibratedPicks:
    def test_argmin_pick(self, graph):
        table = table_for(
            graph,
            entry(batch=64, seconds=2.0),
            entry(batch=256, seconds=0.5),
            entry(batch=1024, seconds=1.0),
        )
        decision = plan(graph, "IC", calibration=table)
        assert decision.source == "calibration"
        assert decision.sample_batch_size == 256
        assert decision.fixture == (graph.n, graph.m)
        assert decision.distance == pytest.approx(0.0)

    def test_tie_breaks_deterministically(self, graph):
        table = table_for(
            graph,
            entry(batch=1024, seconds=1.0),
            entry(batch=64, seconds=1.0),
        )
        decision = plan(graph, "IC", calibration=table)
        assert decision.sample_batch_size == 64  # smaller batch on ties

    def test_file_round_trip(self, graph, tmp_path):
        table = table_for(graph, entry(batch=128, jobs=2, seconds=0.3))
        path = tmp_path / "calibration.json"
        path.write_text(json.dumps(table.to_dict()))
        decision = plan(graph, "IC", calibration=str(path))
        assert decision.source == "calibration"
        assert decision.sample_batch_size == 128
        assert decision.jobs == 2

    def test_nearest_fixture_wins(self, graph):
        near = entry(n=graph.n, m=graph.m, batch=128, seconds=1.0)
        far = CalibrationEntry(
            n=graph.n * 2, m=graph.m * 2, degree_skew=5.0, model="IC",
            sample_batch_size=512, mc_batch_size=None, jobs=1,
            kernel_backend="auto", seconds=0.1,
        )
        table = CalibrationTable(entries=(far, near))
        decision = plan(graph, "IC", calibration=table)
        assert decision.sample_batch_size == 128

    def test_model_object_label(self, graph):
        from repro.diffusion.ic import IndependentCascade

        table = table_for(graph, entry(batch=128, seconds=0.2))
        decision = plan(graph, IndependentCascade(), calibration=table)
        assert decision.source == "calibration"


class TestFromPlan:
    def test_from_plan_applies_knobs(self, graph):
        table = table_for(graph, entry(batch=128, jobs=1, seconds=0.2))
        with ExecutionContext.from_plan(graph, "IC", calibration=table) as context:
            assert context.sample_batch_size == 128
            assert context.jobs == 1
            assert context.diagnostics["plan_source"] == "calibration"

    def test_from_plan_overrides_win(self, graph):
        table = table_for(graph, entry(batch=128, seconds=0.2))
        with ExecutionContext.from_plan(
            graph, "IC", calibration=table, sample_batch_size=512
        ) as context:
            assert context.sample_batch_size == 512

    def test_from_plan_without_calibration(self, graph):
        with ExecutionContext.from_plan(graph, "IC") as context:
            assert context.diagnostics["plan_source"] == "heuristic"


class TestStats:
    def test_graph_stats(self, graph):
        stats = GraphStats.from_graph(graph)
        assert stats.n == graph.n and stats.m == graph.m
        assert stats.avg_degree == pytest.approx(graph.m / graph.n)
        assert stats.degree_skew > 1.0

    def test_distance_is_log_scale(self):
        stats = GraphStats(n=1000, m=10_000, avg_degree=10.0, degree_skew=2.0)
        assert fixture_distance(stats, 1000, 10_000) == pytest.approx(0.0)
        small = fixture_distance(stats, 1100, 11_000)
        large = fixture_distance(stats, 100_000, 1_000_000)
        assert small < 0.2 < large

    def test_static_plan_shape(self):
        tiny = GraphStats(n=100, m=500, avg_degree=5.0, degree_skew=2.0)
        decision = static_plan(tiny, "IC")
        assert decision.sample_batch_size == 1024  # clamped at the top
        huge = GraphStats(n=10**7, m=10**8, avg_degree=10.0, degree_skew=2.0)
        assert static_plan(huge, "IC").sample_batch_size == 64
