"""Unit tests for multi-root RR sets — the paper's core sampling primitive."""

import numpy as np
import pytest

from repro.diffusion.exact import exact_expected_truncated_spread
from repro.errors import ConfigurationError, SamplingError
from repro.graph import generators
from repro.graph.residual import initial_residual, shrink_residual
from repro.sampling.mrr import (
    MRRCollection,
    MRRSampler,
    RootCountRule,
    build_round_pool,
    estimate_truncated_spread_mrr,
)

ONE_MINUS_INV_E = 1.0 - 1.0 / np.e


class TestRootCountRule:
    def test_integer_ratio_is_deterministic(self):
        rule = RootCountRule.for_target(10, 5)
        assert rule.k_low == 2
        assert rule.fraction == pytest.approx(0.0)
        assert rule.expectation == pytest.approx(2.0)

    def test_fractional_ratio(self):
        rule = RootCountRule.for_target(10, 4)   # n/eta = 2.5
        assert rule.k_low == 2
        assert rule.fraction == pytest.approx(0.5)

    def test_expectation_matches_target(self, rng):
        rule = RootCountRule.for_target(10, 3)   # n/eta = 3.333...
        draws = [rule.draw(rng) for _ in range(6000)]
        assert np.mean(draws) == pytest.approx(10 / 3, abs=0.05)

    def test_draws_are_adjacent_integers(self, rng):
        rule = RootCountRule.for_target(10, 4)
        assert set(rule.draw(rng) for _ in range(200)) <= {2, 3}

    def test_eta_one_gives_all_roots(self, rng):
        rule = RootCountRule.for_target(7, 1)
        assert all(rule.draw(rng) == 7 for _ in range(20))

    def test_eta_equals_n_gives_single_root(self, rng):
        # n/eta = 1: mRR degenerates to a vanilla RR set.
        rule = RootCountRule.for_target(9, 9)
        assert all(rule.draw(rng) == 1 for _ in range(20))

    def test_fixed_rule(self, rng):
        rule = RootCountRule.fixed(3, 10)
        assert all(rule.draw(rng) == 3 for _ in range(20))

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            RootCountRule.for_target(5, 0)
        with pytest.raises(ConfigurationError):
            RootCountRule.for_target(5, 6)
        with pytest.raises(ConfigurationError):
            RootCountRule.fixed(0, 5)


class TestMRRSampler:
    def test_sets_contain_roots(self, ic_model, small_social, rng):
        sampler = MRRSampler(small_social, ic_model, eta=12, seed=rng)
        members = sampler.sample()
        assert len(members) >= 1
        assert len(set(members.tolist())) == len(members)

    def test_invalid_eta(self, ic_model, path3):
        with pytest.raises(SamplingError):
            MRRSampler(path3, ic_model, eta=0)
        with pytest.raises(SamplingError):
            MRRSampler(path3, ic_model, eta=7)

    def test_lt_supported(self, lt_model, path5_half, rng):
        sampler = MRRSampler(path5_half, lt_model, eta=2, seed=rng)
        members = sampler.sample()
        assert 1 <= len(members) <= 5


class TestTheorem33:
    """The mRR estimator's bias bracket: (1-1/e) E[Gamma] <= E[Gamma~] <= E[Gamma]."""

    @pytest.mark.parametrize("eta", [1, 2, 3])
    def test_bracket_on_paper_example(self, ic_model, eta):
        g = generators.paper_example_graph()
        for seeds in ([0], [1], [3], [0, 3]):
            truth = exact_expected_truncated_spread(g, ic_model, seeds, eta)
            estimate = estimate_truncated_spread_mrr(
                g, ic_model, seeds, eta, theta=12000, seed=42
            )
            assert estimate <= truth * 1.06          # upper: E[G~] <= E[G]
            assert estimate >= truth * ONE_MINUS_INV_E * 0.94  # lower

    def test_bracket_on_random_graph(self, ic_model):
        g = generators.erdos_renyi(12, 2.0, seed=5)
        g = g.with_probabilities(lambda u, v: 0.4)
        if g.m > 18:  # keep exact enumeration tractable
            pytest.skip("sampled graph too dense for exact enumeration")
        eta = 4
        seeds = [0, 1]
        truth = exact_expected_truncated_spread(g, ic_model, seeds, eta)
        if truth == 0:
            pytest.skip("degenerate draw")
        estimate = estimate_truncated_spread_mrr(
            g, ic_model, seeds, eta, theta=12000, seed=9
        )
        assert ONE_MINUS_INV_E * truth * 0.9 <= estimate <= truth * 1.1

    def test_rr_sets_are_biased_for_truncation(self, ic_model):
        """Section 3.2's negative result: single-root RR underestimates.

        With k = 1 the estimator expectation is (eta/n) E[I(S)], far below
        E[Gamma(S)] when eta << n.
        """
        g = generators.star_graph(12, probability=1.0)
        eta = 3
        truth = exact_expected_truncated_spread(g, ic_model, [0], eta)
        assert truth == pytest.approx(3.0)
        hub_biased = estimate_truncated_spread_mrr(
            g, ic_model, [0], eta, theta=6000, seed=3,
            rule=RootCountRule.fixed(1, 12),
        )
        # Hub seed: every single-root RR set of the certain star contains
        # the hub, so even the naive estimator is exact here.
        assert hub_biased == pytest.approx(3.0)
        # Naive RR estimate = eta * Pr[hub in R] = eta * 1 = 3?  No: with a
        # single uniform root the hub is always in R (certain star), so this
        # particular graph hits.  Use a leaf seed to expose the bias:
        leaf_truth = exact_expected_truncated_spread(g, ic_model, [1], eta)
        assert leaf_truth == pytest.approx(1.0)
        leaf_biased = estimate_truncated_spread_mrr(
            g, ic_model, [1], eta, theta=6000, seed=3,
            rule=RootCountRule.fixed(1, 12),
        )
        # Single-root: Pr[leaf in R] = 1/12, estimate = 3/12 = 0.25 << 1.
        assert leaf_biased < 0.6 * leaf_truth


class TestMRRCollection:
    def test_grow_and_estimate(self, ic_model, small_social):
        pool = MRRCollection(small_social, ic_model, eta=10, seed=0)
        pool.grow_to(300)
        assert len(pool) == 300
        value = pool.estimated_truncated_spread([0])
        assert 0.0 <= value <= 10.0

    def test_estimate_bounded_by_eta(self, ic_model, small_social):
        pool = MRRCollection(small_social, ic_model, eta=5, seed=1)
        pool.grow_to(200)
        everything = pool.estimated_truncated_spread(list(range(small_social.n)))
        assert everything == pytest.approx(5.0)

    def test_estimate_requires_sets(self, ic_model, path3):
        pool = MRRCollection(path3, ic_model, eta=2, seed=0)
        with pytest.raises(SamplingError):
            pool.estimated_truncated_spread([0])

    def test_node_estimate_consistent_with_set_estimate(self, ic_model, small_social):
        pool = MRRCollection(small_social, ic_model, eta=8, seed=2)
        pool.grow_to(400)
        assert pool.estimated_node_truncated_spread(3) == pytest.approx(
            pool.estimated_truncated_spread([3])
        )


class TestCarriedPool:
    """Cross-round carry-over: export, re-validation, fallback."""

    def _pool(self, graph, model, eta, theta=60, seed=4):
        residual = initial_residual(graph, eta)
        collection = MRRCollection(graph, model, eta, seed=seed)
        collection.grow_to(theta)
        return residual, collection

    def test_root_counts_tracked(self, small_social, ic_model):
        _, collection = self._pool(small_social, ic_model, eta=12)
        assert len(collection.root_counts) == len(collection)
        rule = collection.sampler.rule
        assert set(np.unique(collection.root_counts)) <= set(rule.support())
        assert collection.adopted_count == 0
        assert collection.fresh_count == len(collection)

    def test_export_identity_roundtrip(self, small_social, ic_model):
        residual, collection = self._pool(small_social, ic_model, eta=12)
        carry = collection.export_carry(residual)
        kept, diagnostics = carry.revalidate(residual)
        assert kept is not None
        members, indptr, root_counts = kept
        assert diagnostics.sets_carried == len(collection)
        assert diagnostics.fallback is None
        # Round 1's residual is the identity mapping: bit-equal round-trip.
        packed_members, packed_indptr = collection.index.packed()
        assert np.array_equal(members, packed_members)
        assert np.array_equal(indptr, packed_indptr)
        assert np.array_equal(root_counts, collection.root_counts)

    def test_sets_with_activated_members_dropped(self, small_social, ic_model):
        residual, collection = self._pool(small_social, ic_model, eta=12)
        carry = collection.export_carry(residual)
        # Activate the highest-coverage node: every set containing it dies.
        hot, coverage = collection.index.argmax_node()
        shrunk = shrink_residual(residual, [hot])
        kept, diagnostics = carry.revalidate(shrunk)
        assert diagnostics.dropped_activated == coverage
        if kept is not None:
            members, indptr, _ = kept
            # Survivors are remapped to the shrunk residual's local ids.
            assert diagnostics.sets_carried == len(indptr) - 1
            if len(members):
                assert members.max() < shrunk.n
            restored = shrunk.original_ids[members]
            assert hot not in set(restored.tolist())

    def test_regime_shift_falls_back(self, small_social, ic_model):
        residual, collection = self._pool(small_social, ic_model, eta=12)
        carry = collection.export_carry(residual)
        # A shrunk residual whose n/eta ratio leaves the carried support
        # entirely: k was ~ n/12 = 10; after 10 activations the shortfall
        # is 2 and the new rule needs k ~ 55.
        rng = np.random.default_rng(0)
        activated = rng.choice(residual.n, size=10, replace=False)
        shrunk = shrink_residual(residual, activated)
        assert not set(
            RootCountRule.for_target(shrunk.n, shrunk.shortfall).support()
        ) & set(np.unique(carry.root_counts))
        kept, diagnostics = carry.revalidate(shrunk)
        assert kept is None
        assert "regime" in diagnostics.fallback

    def test_adopt_requires_empty_pool(self, small_social, ic_model):
        residual, collection = self._pool(small_social, ic_model, eta=12)
        carry = collection.export_carry(residual)
        kept, _ = carry.revalidate(residual)
        with pytest.raises(SamplingError):
            collection.adopt(*kept)
        fresh = MRRCollection(small_social, ic_model, 12, seed=9)
        fresh.adopt(*kept)
        assert fresh.adopted_count == len(collection)
        assert fresh.fresh_count == 0
        fresh.grow_to(len(collection) + 10)
        assert fresh.fresh_count == 10

    def test_build_round_pool_adopts_then_tops_up(self, small_social, ic_model):
        residual, collection = self._pool(small_social, ic_model, eta=12)
        carry = collection.export_carry(residual)
        pool, diagnostics = build_round_pool(
            residual, ic_model, np.random.default_rng(3), carry=carry
        )
        assert diagnostics.sets_carried == len(collection)
        assert pool.adopted_count == len(collection)
        pool.grow_to(len(collection) + 25)
        assert pool.fresh_count == 25
        assert len(pool.root_counts) == len(pool)

    # -- Cross-request reuse (the service's warm-pool cache) -----------

    def test_cross_request_regime_shift_falls_back(self, small_social, ic_model):
        # A pool built for one request's eta offered to a request whose
        # eta puts the root-count rule on a disjoint support: eta=n wants
        # single-root sets, eta=1 wants n-root sets.  Revalidation must
        # fall back to a scratch build, never adopt off-support sets.
        n = small_social.n
        residual_a, collection = self._pool(small_social, ic_model, eta=n)
        carry = collection.export_carry(residual_a)
        residual_b = initial_residual(small_social, 1)
        assert not set(
            RootCountRule.for_target(residual_b.n, residual_b.shortfall).support()
        ) & set(np.unique(carry.root_counts))
        kept, diagnostics = carry.revalidate(residual_b)
        assert kept is None
        assert "regime" in diagnostics.fallback
        assert diagnostics.sets_carried == 0

    def test_emptied_pool_reenters_cleanly(self, small_social, ic_model):
        # An empty carry (every set invalidated in an earlier request, or
        # a fresh key) must re-enter the adopt/grow/export cycle without
        # special-casing: adoption is a no-op and the next export is a
        # full-strength carry again.
        residual = initial_residual(small_social, 12)
        empty = MRRCollection(small_social, ic_model, 12, seed=4)
        carry = empty.export_carry(residual)
        kept, diagnostics = carry.revalidate(residual)
        assert kept is not None
        assert diagnostics.sets_offered == 0
        assert diagnostics.sets_carried == 0
        assert diagnostics.fallback is None
        fresh = MRRCollection(small_social, ic_model, 12, seed=4)
        fresh.adopt(*kept)
        assert fresh.adopted_count == 0
        fresh.grow_to(40)
        assert fresh.fresh_count == 40
        next_carry = fresh.export_carry(residual)
        kept_again, diagnostics_again = next_carry.revalidate(residual)
        assert kept_again is not None
        assert diagnostics_again.sets_carried == 40
        assert diagnostics_again.fallback is None
