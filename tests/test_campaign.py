"""Unit tests for the campaign runner."""

import pytest

from repro.experiments.campaign import CampaignScale, run_campaign


@pytest.fixture(scope="module")
def campaign():
    scale = CampaignScale(
        graph_n=120,
        realizations=2,
        eta_fractions=(0.05,),
        max_samples=3000,
        algorithms=("ASTI", "ATEUC"),
    )
    return run_campaign(dataset_names=("nethept-sim",), models=("IC",), scale=scale)


class TestScalePresets:
    def test_smoke_is_tiny(self):
        smoke = CampaignScale.smoke()
        assert smoke.graph_n <= 400
        assert smoke.realizations <= 3

    def test_laptop_uses_paper_sweep(self):
        laptop = CampaignScale.laptop()
        assert laptop.eta_fractions is None
        assert laptop.realizations >= 10


class TestRunCampaign:
    def test_grid_keys(self, campaign):
        assert set(campaign.sweeps) == {("nethept-sim", "IC")}
        assert campaign.seconds > 0

    def test_sweep_contents(self, campaign):
        sweep = campaign.sweeps[("nethept-sim", "IC")]
        assert len(sweep.eta_values) == 1
        assert set(sweep.outcomes[sweep.eta_values[0]]) == {"ASTI", "ATEUC"}

    def test_markdown_report(self, campaign):
        report = campaign.markdown_report()
        assert report.startswith("# Campaign report")
        assert "nethept-sim / IC" in report
        assert "Seeds (Figures 4/6)" in report
        assert "Table 3 cells" in report
        assert "```" in report
