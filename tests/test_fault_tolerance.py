"""Tests for the fault-tolerant parallel runtime.

Four concerns:

* **policy plumbing**: :class:`FaultPolicy` / :class:`FaultInjection`
  validation, the ``ExperimentConfig`` / CLI knobs, and the context's
  ``note_faults()`` diagnostics;
* **supervisor unit behavior** on echo chunks: transient retry with
  backoff, crash/kill/hang recovery through pool rebuilds, graceful
  degradation and the ``raise`` policy, ``KeyboardInterrupt`` propagation;
* **shared-memory guard rails**: generation-tagged names, the orphan
  sweeper, publish-time budget validation, segment restoration;
* **recovery equivalence** (the load-bearing guarantee): a run that
  survived injected worker crashes must be *bit-identical* to the clean
  ``jobs=1`` reference — and the ``corrupt`` injector is the negative
  control proving these comparisons can fail.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.diffusion.ic import IndependentCascade
from repro.diffusion.montecarlo import CRNSpreadEvaluator
from repro.errors import (
    ConfigurationError,
    ResourceError,
    TransientWorkerError,
    WorkerPoolError,
)
from repro.experiments.config import ExperimentConfig, quick_config
from repro.experiments.harness import run_eta_point, sample_shared_realizations
from repro.graph import generators, weighting
from repro.parallel.runtime import FaultPolicy, ParallelRuntime
from repro.parallel.shm import (
    pack_arrays,
    sweep_orphans,
    validate_publication,
)
from repro.runtime.context import ExecutionContext
from repro.sampling.coverage import CoverageIndex
from repro.sampling.engine import mrr_batch_sampler
from repro.sampling.mrr import (
    RootCountRule,
    estimate_truncated_spread_mrr,
)
from repro.testing.faults import (
    FaultInjection,
    _corrupt_result,
    echo_chunk,
    interrupt_chunk,
)


@pytest.fixture(scope="module")
def bench_graph():
    topology = generators.preferential_attachment(220, 3, seed=11, directed=False)
    return weighting.weighted_cascade(topology)


# ----------------------------------------------------------------------
# Policy and injection specs
# ----------------------------------------------------------------------

class TestFaultPolicy:
    def test_defaults(self):
        policy = FaultPolicy()
        assert policy.chunk_timeout is None
        assert policy.max_retries == 2
        assert policy.max_rebuilds == 2
        assert policy.on_pool_failure == "degrade"
        assert policy.max_segment_bytes is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"chunk_timeout": 0.0},
            {"chunk_timeout": -1.0},
            {"max_retries": -1},
            {"max_retries": 1.5},
            {"max_rebuilds": -2},
            {"backoff_base": -0.1},
            {"on_pool_failure": "panic"},
            {"max_segment_bytes": 0},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultPolicy(**kwargs)

    def test_runtime_rejects_non_policy(self):
        with pytest.raises(ConfigurationError, match="FaultPolicy"):
            ParallelRuntime(2, fault_policy={"max_retries": 1})

    def test_context_carries_policy_into_runtime(self):
        policy = FaultPolicy(max_retries=7)
        with ExecutionContext(jobs=1, fault_policy=policy) as context:
            assert context.runtime.fault_policy.max_retries == 7
        with pytest.raises(ConfigurationError, match="FaultPolicy"):
            ExecutionContext(fault_policy="degrade")
        with pytest.raises(ConfigurationError, match="FaultInjection"):
            ExecutionContext(fault_injection="crash")

    def test_config_knobs_validate_and_propagate(self):
        config = quick_config().scaled(chunk_timeout=30.0, max_retries=1)
        assert config.fault_policy().chunk_timeout == 30.0
        with config.to_context() as context:
            assert context.fault_policy.max_retries == 1
        with pytest.raises(ConfigurationError):
            ExperimentConfig(dataset="nethept-sim", on_pool_failure="explode")
        with pytest.raises(ConfigurationError):
            ExperimentConfig(dataset="nethept-sim", chunk_timeout=-3.0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(dataset="nethept-sim", max_retries=-1)

    def test_cli_flags_reach_the_context(self):
        from repro.cli import _context_from_args, build_parser

        args = build_parser().parse_args(
            [
                "sweep", "--dataset", "nethept-sim", "--jobs", "2",
                "--chunk-timeout", "45", "--max-retries", "5",
                "--on-pool-failure", "raise",
            ]
        )
        assert args.chunk_timeout == 45.0
        assert args.max_retries == 5
        assert args.on_pool_failure == "raise"
        context = _context_from_args(args)
        assert context.fault_policy == FaultPolicy(
            chunk_timeout=45.0, max_retries=5, on_pool_failure="raise"
        )
        context.close()


class TestFaultInjection:
    def test_fires_on_exact_coordinates(self):
        spec = FaultInjection("raise", nth=3, attempts=(0, 1))
        assert spec.fires(3, 0)
        assert spec.fires(3, 1)
        assert not spec.fires(3, 2)
        assert not spec.fires(2, 0)

    @pytest.mark.parametrize(
        "kwargs", [{"kind": "meltdown"}, {"kind": "crash", "nth": -1}]
    )
    def test_bad_specs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultInjection(**kwargs)

    def test_corrupt_result_perturbs_first_array(self):
        clean = (np.arange(4), np.arange(3))
        dirty = _corrupt_result(clean)
        assert dirty[0][0] == 1  # +1 on the first element of the first array
        assert np.array_equal(dirty[1], clean[1])
        assert clean[0][0] == 0  # original untouched (copy semantics)
        assert _corrupt_result([2, 3]) == [3, 3]


# ----------------------------------------------------------------------
# Supervisor unit behavior (echo chunks, no domain code)
# ----------------------------------------------------------------------

class TestSupervisedDispatch:
    def test_transient_failure_retried_in_place(self):
        with ParallelRuntime(2, injection=FaultInjection("raise", nth=2)) as rt:
            assert rt.map_ordered(echo_chunk, [(i,) for i in range(6)]) == list(
                range(6)
            )
            stats = rt.fault_stats
            assert stats["retries"] == 1
            assert stats["rebuilds"] == 0
            assert stats["degraded_chunks"] == 0
            assert stats["recovered_seconds"] > 0

    def test_retry_budget_exhaustion_degrades(self):
        injection = FaultInjection("raise", nth=0, attempts=tuple(range(10)))
        policy = FaultPolicy(max_retries=1, backoff_base=0.0)
        with ParallelRuntime(2, fault_policy=policy, injection=injection) as rt:
            assert rt.map_ordered(echo_chunk, [(0,), (1,)]) == [0, 1]
            assert rt.fault_stats["retries"] == 1
            assert rt.fault_stats["degraded_chunks"] >= 1

    @pytest.mark.parametrize("kind", ["crash", "kill"])
    def test_worker_death_recovers_via_rebuild(self, kind):
        with ParallelRuntime(2, injection=FaultInjection(kind, nth=1)) as rt:
            assert rt.map_ordered(echo_chunk, [(i,) for i in range(6)]) == list(
                range(6)
            )
            stats = rt.fault_stats
            assert stats["rebuilds"] == 1
            assert stats["degraded_chunks"] == 0

    def test_hung_worker_recovers_via_timeout(self):
        policy = FaultPolicy(chunk_timeout=1.5)
        injection = FaultInjection("hang", nth=0, hang_seconds=120.0)
        with ParallelRuntime(2, fault_policy=policy, injection=injection) as rt:
            assert rt.map_ordered(echo_chunk, [(i,) for i in range(4)]) == list(
                range(4)
            )
            stats = rt.fault_stats
            assert stats["timeouts"] == 1
            assert stats["rebuilds"] == 1

    def test_rebuild_budget_exhaustion_degrades(self):
        injection = FaultInjection("crash", nth=0, attempts=tuple(range(10)))
        policy = FaultPolicy(max_rebuilds=0)
        with ParallelRuntime(2, fault_policy=policy, injection=injection) as rt:
            assert rt.map_ordered(echo_chunk, [(i,) for i in range(4)]) == list(
                range(4)
            )
            stats = rt.fault_stats
            # Chunks that finished on the surviving worker before the pool
            # broke are harvested, not re-run, so anywhere from 1 chunk
            # (the crashed one — it can never be harvested) to all 4
            # degrade depending on timing; never a rebuild.
            assert 1 <= stats["degraded_chunks"] <= 4
            assert stats["rebuilds"] == 0
            # Degradation tears the dead pool down; the next dispatch
            # lazily builds a fresh one and succeeds cleanly (the
            # injection's chunk 0 is long past).
            assert rt.map_ordered(echo_chunk, [(9,)]) == [9]

    def test_raise_policy_surfaces_worker_pool_error(self):
        injection = FaultInjection("crash", nth=0, attempts=tuple(range(10)))
        policy = FaultPolicy(max_rebuilds=0, on_pool_failure="raise")
        with ParallelRuntime(2, fault_policy=policy, injection=injection) as rt:
            with pytest.raises(WorkerPoolError, match="chunk 0"):
                rt.map_ordered(echo_chunk, [(i,) for i in range(4)])

    def test_transient_error_is_worker_pool_error(self):
        # Callers catching WorkerPoolError also see undeclared transients.
        assert issubclass(TransientWorkerError, WorkerPoolError)

    def test_chunk_ids_are_lifetime_global(self):
        # The injection targets chunk 6: dispatch two batches of 4 and the
        # fault must fire in the *second* batch (chunks 4..7).
        with ParallelRuntime(2, injection=FaultInjection("raise", nth=6)) as rt:
            rt.map_ordered(echo_chunk, [(i,) for i in range(4)])
            assert rt.fault_stats["retries"] == 0
            rt.map_ordered(echo_chunk, [(i,) for i in range(4)])
            assert rt.fault_stats["retries"] == 1

    def test_keyboard_interrupt_propagates_unretried(self):
        with ParallelRuntime(2) as rt:
            with pytest.raises(KeyboardInterrupt):
                rt.map_ordered(interrupt_chunk, [(0,), (1,)])
            assert rt.fault_stats["retries"] == 0
            assert rt.fault_stats["degraded_chunks"] == 0

    def test_deterministic_chunk_errors_propagate(self):
        # ValueError from int("nope") is not transient: no retry, no
        # degradation — the bug surfaces immediately.
        with ParallelRuntime(2) as rt:
            with pytest.raises(ValueError):
                rt.map_ordered(int, [("nope",)])
            assert rt.fault_stats["retries"] == 0


# ----------------------------------------------------------------------
# Shared-memory guard rails
# ----------------------------------------------------------------------

class TestSegmentRegistry:
    def test_names_are_generation_tagged(self):
        bundle = pack_arrays({"x": np.arange(8)})
        try:
            prefix, pid, token, generation = bundle.name.split("-")
            assert prefix == "reproshm"
            assert int(pid) == os.getpid()
            assert generation.startswith("g") and generation[1:].isdigit()
        finally:
            bundle.close()

    def test_sweep_unlinks_only_dead_runs(self, tmp_path):
        dead = subprocess.Popen([sys.executable, "-c", "pass"])
        dead.wait()
        (tmp_path / f"reproshm-{dead.pid}-deadbeef-g0").touch()
        (tmp_path / f"reproshm-{os.getpid()}-cafecafe-g1").touch()
        (tmp_path / "someone-elses-file").touch()
        removed = sweep_orphans(shm_dir=str(tmp_path))
        assert removed == [f"reproshm-{dead.pid}-deadbeef-g0"]
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            f"reproshm-{os.getpid()}-cafecafe-g1",
            "someone-elses-file",
        ]

    def test_sweep_missing_dir_is_noop(self):
        assert sweep_orphans(shm_dir="/nonexistent/shm") == []

    def test_publication_budget_enforced(self):
        with pytest.raises(ResourceError, match="segment budget"):
            pack_arrays({"x": np.zeros(1024, dtype=np.float64)}, max_bytes=64)
        validate_publication(64, max_bytes=64)  # at the limit is fine

    def test_publication_free_space_enforced(self, monkeypatch):
        import repro.parallel.shm as shm_module

        monkeypatch.setattr(shm_module, "_available_shm_bytes", lambda: 128)
        with pytest.raises(ResourceError, match="available"):
            validate_publication(256)

    def test_policy_budget_reaches_publications(self, bench_graph):
        policy = FaultPolicy(max_segment_bytes=16)
        with ParallelRuntime(2, fault_policy=policy) as rt:
            with pytest.raises(ResourceError, match="segment budget"):
                rt.publish_graph(bench_graph)
            with pytest.raises(ResourceError, match="segment budget"):
                rt.publish_arrays({"x": np.zeros(64)})

    @pytest.mark.skipif(
        not os.path.isdir("/dev/shm"), reason="needs a POSIX shm filesystem"
    )
    def test_restore_recreates_segment_under_original_name(self):
        from multiprocessing import shared_memory

        source = np.arange(32, dtype=np.int64)
        bundle = pack_arrays({"x": source})
        try:
            os.unlink(os.path.join("/dev/shm", bundle.name))  # simulate leak
            assert not bundle.segment_exists()
            bundle.restore()
            assert bundle.segment_exists()
            probe = shared_memory.SharedMemory(name=bundle.name)
            try:
                spec = bundle.handle.specs[0]
                view = np.ndarray(
                    spec[2], dtype=spec[3], buffer=probe.buf, offset=spec[1]
                )
                assert np.array_equal(view, source)
            finally:
                probe.close()
            bundle.restore()  # still present: no-op
        finally:
            bundle.close()
        bundle.restore()  # released: no-op, nothing recreated
        assert not bundle.segment_exists()

    def test_published_releases_on_exception(self):
        with ParallelRuntime(2) as rt:
            with pytest.raises(RuntimeError, match="boom"):
                with rt.published({"x": np.arange(4)}) as handle:
                    assert handle.shm_name.startswith("reproshm-")
                    assert len(rt._state["bundles"]) == 1
                    raise RuntimeError("boom")
            assert len(rt._state["bundles"]) == 0


# ----------------------------------------------------------------------
# Recovery equivalence: recovered bytes == clean bytes
# ----------------------------------------------------------------------

def _mrr_pool(graph, runtime, seed=42, sets=240, batch_size=64):
    rule = RootCountRule.for_target(graph.n, max(1, graph.n // 10))
    engine = mrr_batch_sampler(
        graph,
        IndependentCascade(),
        rule,
        seed=seed,
        batch_size=batch_size,
        runtime=runtime,
    )
    index = CoverageIndex(graph.n)
    counts = engine.fill(index, sets)
    members, indptr = index.packed()
    return members.copy(), indptr.copy(), counts


class TestRecoveryEquivalence:
    def test_mrr_pool_identical_after_worker_crash(self, bench_graph):
        with ParallelRuntime(1) as clean_rt:
            clean = _mrr_pool(bench_graph, clean_rt)
        with ParallelRuntime(
            2, injection=FaultInjection("crash", nth=0)
        ) as chaos_rt:
            recovered = _mrr_pool(bench_graph, chaos_rt)
            assert chaos_rt.fault_stats["rebuilds"] == 1
        for reference, survivor in zip(clean, recovered):
            assert np.array_equal(reference, survivor)

    def test_crn_estimates_identical_after_worker_crash(self, bench_graph):
        candidates = [[v] for v in range(25)] + [[0, 3, 9]]

        def estimates(runtime):
            with CRNSpreadEvaluator(
                bench_graph,
                IndependentCascade(),
                n_sims=30,
                seed=5,
                mc_batch_size=16,
                runtime=runtime,
            ) as evaluator:
                return evaluator.evaluate_many(candidates, eta=25)

        with ParallelRuntime(1) as clean_rt:
            clean = estimates(clean_rt)
        with ParallelRuntime(
            2, injection=FaultInjection("crash", nth=0)
        ) as chaos_rt:
            recovered = estimates(chaos_rt)
            assert chaos_rt.fault_stats["rebuilds"] == 1
        assert np.array_equal(clean, recovered)

    def test_degraded_run_is_bit_identical_too(self, bench_graph):
        # Budgets at zero with an always-firing crash: every surviving
        # chunk runs in-process, and the answer still matches exactly.
        with ParallelRuntime(1) as clean_rt:
            clean = _mrr_pool(bench_graph, clean_rt)
        injection = FaultInjection("crash", nth=0, attempts=tuple(range(20)))
        policy = FaultPolicy(max_rebuilds=0)
        with ParallelRuntime(
            2, fault_policy=policy, injection=injection
        ) as chaos_rt:
            recovered = _mrr_pool(bench_graph, chaos_rt)
            assert chaos_rt.fault_stats["degraded_chunks"] >= 1
        for reference, survivor in zip(clean, recovered):
            assert np.array_equal(reference, survivor)

    def test_eta_point_identical_after_worker_crash(self, bench_graph):
        model = IndependentCascade()
        realizations = sample_shared_realizations(bench_graph, model, 3, seed=13)
        labels = ("ASTI", "ATEUC")

        def outcomes(runtime):
            results = run_eta_point(
                bench_graph,
                model,
                eta=15,
                algorithms=labels,
                realizations=realizations,
                max_samples=4000,
                seed=2,
                runtime=runtime,
            )
            return {
                label: [
                    (r.seed_count, r.spread, r.achieved, r.marginal_spreads)
                    for r in results[label].runs
                ]
                for label in labels
            }

        clean = outcomes(None)
        with ParallelRuntime(
            2, injection=FaultInjection("crash", nth=0)
        ) as chaos_rt:
            recovered = outcomes(chaos_rt)
            assert chaos_rt.fault_stats["rebuilds"] == 1
        assert clean == recovered

    def test_corrupt_injection_is_detected(self, bench_graph):
        # Negative control: if silent corruption survived to the output
        # and the comparison still passed, none of the tests above would
        # be measuring anything.
        candidates = [[v] for v in range(25)]
        clean = CRNSpreadEvaluator(
            bench_graph, IndependentCascade(), n_sims=30, seed=5, mc_batch_size=16
        ).evaluate_many(candidates)
        with ParallelRuntime(
            2, injection=FaultInjection("corrupt", nth=0)
        ) as chaos_rt:
            with CRNSpreadEvaluator(
                bench_graph,
                IndependentCascade(),
                n_sims=30,
                seed=5,
                mc_batch_size=16,
                runtime=chaos_rt,
            ) as evaluator:
                corrupted = evaluator.evaluate_many(candidates)
        assert not np.array_equal(clean, corrupted)

    def test_note_faults_records_recovery(self, bench_graph):
        context = ExecutionContext(
            jobs=2, fault_injection=FaultInjection("crash", nth=0)
        )
        with context:
            chaos = estimate_truncated_spread_mrr(
                bench_graph,
                IndependentCascade(),
                [0, 1],
                eta=20,
                theta=400,
                seed=3,
                batch_size=64,
                context=context,
            )
            context.note_faults()
        clean = estimate_truncated_spread_mrr(
            bench_graph,
            IndependentCascade(),
            [0, 1],
            eta=20,
            theta=400,
            seed=3,
            batch_size=64,
            jobs=1,
        )
        assert chaos == clean
        assert context.diagnostics["fault_rebuilds"] == 1
        assert context.diagnostics["fault_degraded_chunks"] == 0

    def test_note_faults_noop_without_runtime(self):
        context = ExecutionContext()
        context.note_faults()
        assert not any(key.startswith("fault_") for key in context.diagnostics)
        # And it must not *create* a runtime as a side effect.
        parallel = ExecutionContext(jobs=2)
        parallel.note_faults()
        assert parallel._runtime is None
        parallel.close()
