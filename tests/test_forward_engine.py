"""Tests for the batched forward-simulation engine and the CRN evaluator.

Covers the three contracts the forward engine makes:

* seed validation is identical across IC, LT, and the topic-aware model
  (out-of-range ids raise :class:`NodeNotFoundError`, duplicates dedup);
* ``simulate_batch`` agrees with the per-cascade ``simulate`` loop —
  bit-deterministic under a fixed seed, distributionally on aggregates;
* the chunked estimators early-stop on the CI tolerance but never before
  the first chunk, and the common-random-number evaluator scores every
  candidate on identical noise.
"""

import numpy as np
import pytest

from repro.diffusion.base import DiffusionModel, normalize_seeds
from repro.diffusion.ic import IndependentCascade
from repro.diffusion.lt import LinearThreshold
from repro.diffusion.montecarlo import (
    CRNSpreadEvaluator,
    estimate_spread,
    estimate_spreads_many,
)
from repro.diffusion.topic import TopicAwareGraph, TopicAwareIC, TopicMixture
from repro.errors import ConfigurationError, NodeNotFoundError
from repro.graph import generators, weighting


@pytest.fixture(params=["IC", "LT", "TIC"])
def model_and_graph(request):
    """Each diffusion model with a compatible ~60-node graph."""
    topology = generators.preferential_attachment(60, 2, seed=5, directed=False)
    graph = weighting.weighted_cascade(topology)
    if request.param == "IC":
        return IndependentCascade(), graph
    if request.param == "LT":
        return LinearThreshold(), graph
    taw = TopicAwareGraph.random(topology, num_topics=3, seed=11)
    model, collapsed = TopicAwareIC.for_item(taw, TopicMixture.uniform(3))
    return model, collapsed


class TestSeedValidation:
    """Satellite: identical seed handling across all three models."""

    @pytest.mark.parametrize("bad_seed", [-1, 60, 10_000])
    def test_simulate_rejects_out_of_range(self, model_and_graph, bad_seed):
        model, graph = model_and_graph
        with pytest.raises(NodeNotFoundError):
            model.simulate(graph, [0, bad_seed], seed=0)

    @pytest.mark.parametrize("bad_seed", [-1, 60, 10_000])
    def test_simulate_batch_rejects_out_of_range(self, model_and_graph, bad_seed):
        model, graph = model_and_graph
        with pytest.raises(NodeNotFoundError):
            model.simulate_batch(graph, [bad_seed], 4, seed=0)

    def test_base_class_simulate_validates(self, model_and_graph):
        model, graph = model_and_graph
        with pytest.raises(NodeNotFoundError):
            DiffusionModel.simulate(model, graph, [graph.n], seed=0)

    def test_duplicates_are_deduplicated(self, model_and_graph):
        model, graph = model_and_graph
        members, indptr = model.simulate_batch(graph, [3, 3, 3], 6, seed=1)
        for i in range(6):
            sample = members[indptr[i] : indptr[i + 1]]
            assert (sample == 3).sum() == 1  # seeded once, not thrice
            assert len(np.unique(sample)) == len(sample)

    def test_normalize_seeds_sorts_and_dedups(self, model_and_graph):
        _, graph = model_and_graph
        assert normalize_seeds(graph, [5, 1, 5, 2]).tolist() == [1, 2, 5]
        assert normalize_seeds(graph, []).tolist() == []


class TestSimulateBatch:
    def test_fixed_seed_determinism(self, model_and_graph):
        model, graph = model_and_graph
        a = model.simulate_batch(graph, [0, 7], 40, seed=123)
        b = model.simulate_batch(graph, [0, 7], 40, seed=123)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_packed_shape_invariants(self, model_and_graph):
        model, graph = model_and_graph
        members, indptr = model.simulate_batch(graph, [0, 7], 25, seed=2)
        assert len(indptr) == 26 and indptr[0] == 0
        assert (np.diff(indptr) >= 2).all()  # both seeds active in every sim
        assert members.min() >= 0 and members.max() < graph.n
        for i in range(25):
            sample = members[indptr[i] : indptr[i + 1]]
            assert 0 in sample and 7 in sample

    def test_zero_sims(self, model_and_graph):
        model, graph = model_and_graph
        members, indptr = model.simulate_batch(graph, [0], 0, seed=0)
        assert len(members) == 0 and indptr.tolist() == [0]

    def test_negative_sims_rejected(self, model_and_graph):
        model, graph = model_and_graph
        with pytest.raises(ConfigurationError):
            model.simulate_batch(graph, [0], -1, seed=0)

    def test_matches_scalar_loop_distribution(self, model_and_graph):
        """Batched and per-cascade means agree within combined CI."""
        model, graph = model_and_graph
        sims = 600
        _, indptr = model.simulate_batch(graph, [0, 3], sims, seed=10)
        batched = np.diff(indptr).astype(float)
        rng = np.random.default_rng(10)
        loop = np.array(
            [model.simulate(graph, [0, 3], rng).sum() for _ in range(sims)],
            dtype=float,
        )
        margin = 4.0 * np.sqrt(
            batched.var(ddof=1) / sims + loop.var(ddof=1) / sims
        )
        assert abs(batched.mean() - loop.mean()) <= margin + 1e-9

    def test_matches_base_class_reference(self, model_and_graph):
        """The concrete override agrees with the simulate-loop fallback."""
        model, graph = model_and_graph
        sims = 500
        _, fast_indptr = model.simulate_batch(graph, [1], sims, seed=21)
        _, ref_indptr = DiffusionModel.simulate_batch(
            model, graph, [1], sims, seed=22
        )
        fast = np.diff(fast_indptr).astype(float)
        ref = np.diff(ref_indptr).astype(float)
        margin = 4.0 * np.sqrt(fast.var(ddof=1) / sims + ref.var(ddof=1) / sims)
        assert abs(fast.mean() - ref.mean()) <= margin + 1e-9


class TestHubSeededLT:
    """Regression for the high-skew LT forward case (the engine benchmark's
    historical 0.85x weak spot): batching from a hub on a heavy-tailed
    graph must stay equivalent to the scalar loop, and the kernel path
    must stay bit-identical to the closures exactly where frontiers are
    widest."""

    @pytest.fixture
    def hub_and_graph(self):
        topology = generators.preferential_attachment(
            400, 6, seed=13, directed=False
        )
        graph = weighting.weighted_cascade(topology)
        hub = int(np.diff(graph.out_csr[0]).argmax())
        return hub, graph

    def test_batch_matches_scalar_loop_from_hub(self, hub_and_graph):
        hub, graph = hub_and_graph
        model = LinearThreshold()
        sims = 400
        _, indptr = model.simulate_batch(graph, [hub], sims, seed=31)
        batched = np.diff(indptr).astype(float)
        rng = np.random.default_rng(31)
        loop = np.array(
            [model.simulate(graph, [hub], rng).sum() for _ in range(sims)],
            dtype=float,
        )
        margin = 4.0 * np.sqrt(
            batched.var(ddof=1) / sims + loop.var(ddof=1) / sims
        )
        assert abs(batched.mean() - loop.mean()) <= margin + 1e-9

    def test_backends_bit_identical_from_hub(self, hub_and_graph):
        hub, graph = hub_and_graph
        model = LinearThreshold()
        base = model.simulate_batch(graph, [hub], 120, seed=32, kernel="numpy")
        fast = model.simulate_batch(graph, [hub], 120, seed=32, kernel="python")
        assert np.array_equal(base[0], fast[0])
        assert np.array_equal(base[1], fast[1])


class TestEarlyStop:
    def test_never_stops_before_first_chunk(self, ic_model, path3):
        # Tolerance trivially satisfied (deterministic graph): the estimator
        # must still run the full minimum chunk, never fewer.
        est = estimate_spread(
            path3, ic_model, [0], samples=900, seed=0,
            mc_batch_size=64, ci_halfwidth=1e9,
        )
        assert est.samples == 64
        assert est.mean == pytest.approx(3.0)

    def test_runs_to_samples_without_tolerance(self, ic_model, path3):
        est = estimate_spread(
            path3, ic_model, [0], samples=130, seed=0, mc_batch_size=64
        )
        assert est.samples == 130  # 64 + 64 + 2: cap respected exactly

    def test_stops_once_tolerance_met(self, ic_model, small_social):
        loose = estimate_spread(
            small_social, ic_model, [0], samples=4000, seed=3,
            mc_batch_size=100, ci_halfwidth=50.0,
        )
        tight = estimate_spread(
            small_social, ic_model, [0], samples=4000, seed=3,
            mc_batch_size=100, ci_halfwidth=1e-6,
        )
        assert loose.samples == 100          # met after the first chunk
        assert tight.samples == 4000         # never met: runs to the cap
        assert 1.96 * loose.std_error <= 50.0


class TestCRNEvaluator:
    def test_identical_noise_is_reproducible(self, model_and_graph):
        model, graph = model_and_graph
        evaluator = CRNSpreadEvaluator(graph, model, n_sims=60, seed=4)
        first = evaluator.evaluate([0, 5])
        second = evaluator.evaluate([0, 5])
        assert first == second  # exact: same worlds, deterministic replay

    def test_superset_never_scores_below_subset(self, model_and_graph):
        model, graph = model_and_graph
        evaluator = CRNSpreadEvaluator(graph, model, n_sims=40, seed=9)
        matrix = evaluator.spread_matrix([[0], [0, 8], [0, 8, 15]])
        assert (matrix[1] >= matrix[0]).all()
        assert (matrix[2] >= matrix[1]).all()

    def test_matches_realization_replay(self, model_and_graph):
        # Construction is deterministic: re-drawing the worlds from the
        # same seed must reproduce the evaluator's scores exactly.
        model, graph = model_and_graph
        evaluator = CRNSpreadEvaluator(graph, model, n_sims=30, seed=6)
        matrix = evaluator.spread_matrix([[2, 4]])
        rng = np.random.default_rng(6)
        reference = [
            model.sample_realization(graph, rng).spread([2, 4])
            for _ in range(30)
        ]
        assert matrix[0].tolist() == reference

    def test_truncation_caps_values(self, model_and_graph):
        model, graph = model_and_graph
        evaluator = CRNSpreadEvaluator(graph, model, n_sims=30, seed=7)
        values = evaluator.evaluate_many([[0], [0, 1, 2]], eta=3)
        assert (values <= 3.0).all()

    def test_agrees_with_fresh_noise_estimate(self, ic_model, small_social):
        crn = estimate_spreads_many(
            small_social, ic_model, [[0]], n_sims=1500, seed=8
        )[0]
        mc = estimate_spread(small_social, ic_model, [0], samples=1500, seed=9)
        assert crn == pytest.approx(mc.mean, rel=0.15)

    def test_candidate_chunking_matches_unchunked(self, ic_model, small_social):
        """A tiny bitset budget forces many chunks; results are identical."""
        sets = [[v] for v in range(0, 40)]
        whole = CRNSpreadEvaluator(small_social, ic_model, n_sims=25, seed=12)
        tiny = CRNSpreadEvaluator(
            small_social, ic_model, n_sims=25, seed=12,
            bitset_budget=small_social.n * 25,  # one candidate per chunk
        )
        bounded = CRNSpreadEvaluator(
            small_social, ic_model, n_sims=25, seed=12,
            mc_batch_size=25,  # jobs-per-sweep bound: one candidate per chunk
        )
        expected = whole.spread_matrix(sets)
        assert np.array_equal(expected, tiny.spread_matrix(sets))
        assert np.array_equal(expected, bounded.spread_matrix(sets))

    def test_validates_seed_ids(self, ic_model, small_social):
        evaluator = CRNSpreadEvaluator(small_social, ic_model, n_sims=5, seed=0)
        with pytest.raises(NodeNotFoundError):
            evaluator.evaluate_many([[0], [small_social.n]])
