"""ExecutionContext: propagation, legacy-kwarg equivalence, lifecycle.

The tentpole contract of the unified context refactor:

* a default context reaches every engine untouched;
* an explicit context overrides the policy end to end;
* legacy per-knob kwargs emit ``DeprecationWarning`` while producing
  bit-identical pools, CRN estimates, and adaptive seed sets;
* the engine-knob validators are shared, so every layer rejects a bad
  value with the identical message.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import ASTI, ExecutionContext, IndependentCascade
from repro.baselines.adaptim import AdaptIM
from repro.baselines.ateuc import ATEUC
from repro.baselines.celf import CELFMinimizer
from repro.core.trim import TrimSelector
from repro.core.trim_b import TrimBSelector
from repro.diffusion.montecarlo import (
    DEFAULT_MC_BATCH_SIZE,
    CRNSpreadEvaluator,
    estimate_truncated_spread,
)
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig, quick_config
from repro.experiments.harness import build_algorithm, run_eta_point, run_sweep
from repro.parallel.runtime import ParallelRuntime
from repro.sampling.engine import DEFAULT_BATCH_SIZE
from repro.sampling.mrr import estimate_truncated_spread_mrr
from repro.utils.rng import spawn_generators


@pytest.fixture
def model():
    return IndependentCascade()


class TestDefaults:
    def test_default_context_fields(self):
        ctx = ExecutionContext()
        assert ctx.sample_batch_size == DEFAULT_BATCH_SIZE
        assert ctx.mc_batch_size is None
        assert ctx.mc_tolerance is None
        assert ctx.reuse_pool is True
        assert ctx.jobs is None
        assert ctx.max_samples is None
        assert ctx.graph_storage == "adaptive"
        assert ctx.runtime is None  # jobs=None: historical in-process route

    def test_default_context_reaches_every_facade_untouched(self, model):
        for algorithm in (
            ASTI(model),
            AdaptIM(model),
            ATEUC(model),
            CELFMinimizer(model),
        ):
            ctx = algorithm.context
            assert ctx.sample_batch_size == DEFAULT_BATCH_SIZE
            assert ctx.jobs is None
            assert ctx.reuse_pool is True

    def test_facade_shares_one_context_with_its_selector(self, model):
        asti = ASTI(model)
        assert asti.selector.context is asti.context
        asti_b = ASTI(model, batch_size=4)
        assert asti_b.selector.context is asti_b.context
        adaptim = AdaptIM(model)
        assert adaptim.selector.context is adaptim.context


class TestExplicitOverride:
    def test_explicit_context_overrides_end_to_end(self, model):
        ctx = ExecutionContext(
            sample_batch_size=32,
            mc_batch_size=16,
            reuse_pool=False,
            max_samples=5000,
        )
        asti = ASTI(model, context=ctx)
        assert asti.sample_batch_size == 32
        assert asti.reuse_pool is False
        assert asti.selector.sample_batch_size == 32
        assert asti.selector.max_samples == 5000  # context supplies the cap
        celf = CELFMinimizer(model, context=ctx)
        assert celf.mc_batch_size == 16
        ateuc = ATEUC(model, context=ctx)
        assert ateuc.sample_batch_size == 32

    def test_build_algorithm_threads_context(self, model):
        ctx = ExecutionContext(sample_batch_size=48, jobs=1)
        for label in ("ASTI", "ASTI-4", "AdaptIM", "ATEUC"):
            algorithm = build_algorithm(label, model, 0.5, 1000, context=ctx)
            # Adaptive entries and ATEUC get the sequential derivation: the
            # harness parallelizes them at the realization level, so their
            # pool growth must keep the historical in-process stream.
            assert algorithm.context.sample_batch_size == 48
            assert algorithm.context.jobs is None
        celf = build_algorithm("CELF", model, 0.5, None, context=ctx)
        assert celf.context is ctx  # only CELF sees the runtime
        ctx.close()

    def test_config_to_context_is_single_source_of_truth(self):
        config = quick_config().scaled(
            sample_batch_size=96,
            mc_batch_size=7,
            mc_tolerance=2.5,
            reuse_pool=False,
            jobs=2,
            max_samples=1234,
        )
        ctx = config.to_context()
        assert ctx.sample_batch_size == 96
        assert ctx.mc_batch_size == 7
        assert ctx.mc_tolerance == 2.5
        assert ctx.reuse_pool is False
        assert ctx.jobs == 2
        assert ctx.max_samples == 1234
        ctx.close()

    def test_mc_tolerance_defaults_the_estimator_early_stop(self, small_social, model):
        loose = ExecutionContext(mc_tolerance=1000.0)
        estimate = estimate_truncated_spread(
            small_social, model, [0], eta=30, samples=2000, seed=3, context=loose
        )
        # A huge tolerance stops after the first chunk.
        assert estimate.samples == DEFAULT_MC_BATCH_SIZE

    def test_sweep_records_graph_storage_decision(self):
        config = quick_config(
            graph_n=120,
            realizations=2,
            algorithms=("ASTI",),
            eta_fractions=(0.1,),
            max_samples=4000,
        )
        context = config.to_context()
        graph = context.apply_storage(config.build_graph())
        context.note_graph(graph)
        assert context.diagnostics["graph_storage"] == "adaptive"
        assert context.diagnostics["graph_index_dtype"] == "int32"
        assert "graph_csr_nbytes" in context.diagnostics
        context.close()

    def test_graph_storage_policy_applies_end_to_end(self):
        config = quick_config(
            graph_n=120,
            realizations=2,
            algorithms=("ASTI",),
            eta_fractions=(0.1,),
            max_samples=4000,
        ).scaled(graph_storage="wide")
        context = config.to_context()
        graph = context.apply_storage(config.build_graph())
        assert graph.storage == "wide"
        assert str(graph.index_dtype) == "int64"
        # Residual shrinks inherit the pinned layout.
        import numpy as _np

        keep = _np.ones(graph.n, dtype=bool)
        keep[0] = False
        sub, _ = graph.induced_subgraph(keep)
        assert sub.storage == "wide"
        context.close()
        with pytest.raises(ConfigurationError, match="graph_storage"):
            quick_config().scaled(graph_storage="sparse")

    def test_pool_tallies_land_in_diagnostics(self, small_social_damped, model):
        ctx = ExecutionContext(max_samples=4000)
        ASTI(model, context=ctx).run(small_social_damped, eta=15, seed=4)
        assert ctx.diagnostics["mrr_pools_built"] >= 1
        assert "mrr_sets_carried" in ctx.diagnostics  # reuse_pool default on
        ctx.close()


class TestLegacyEquivalence:
    def test_legacy_kwargs_warn(self, model):
        with pytest.deprecated_call():
            ASTI(model, sample_batch_size=64)
        with pytest.deprecated_call():
            AdaptIM(model, jobs=1).close()
        with pytest.deprecated_call():
            TrimSelector(model, reuse_pool=False)
        with pytest.deprecated_call():
            TrimBSelector(model, b=2, sample_batch_size=8)
        with pytest.deprecated_call():
            CELFMinimizer(model, mc_batch_size=32)
        with pytest.deprecated_call():
            ATEUC(model, sample_batch_size=16)

    def test_context_plus_legacy_kwargs_is_an_error(self, model):
        ctx = ExecutionContext()
        with pytest.raises(ConfigurationError, match="not both"):
            ASTI(model, sample_batch_size=64, context=ctx)
        with pytest.raises(ConfigurationError, match="not both"):
            CELFMinimizer(model, jobs=2, context=ctx)
        with pytest.raises(ConfigurationError, match="not both"):
            estimate_truncated_spread_mrr(
                None, model, [0], 1, jobs=1, context=ctx
            )

    def test_legacy_asti_bit_identical_seed_sets(self, small_social_damped, model):
        with pytest.deprecated_call():
            legacy = ASTI(
                model, epsilon=0.5, sample_batch_size=64, reuse_pool=True
            ).run(small_social_damped, eta=20, seed=11)
        modern = ASTI(
            model,
            epsilon=0.5,
            context=ExecutionContext(sample_batch_size=64, reuse_pool=True),
        ).run(small_social_damped, eta=20, seed=11)
        assert legacy.seeds == modern.seeds
        assert legacy.spread == modern.spread
        assert [r.samples_generated for r in legacy.rounds] == [
            r.samples_generated for r in modern.rounds
        ]

    def test_legacy_jobs_bit_identical_mrr_pools(self, small_social, model):
        with pytest.deprecated_call():
            legacy = estimate_truncated_spread_mrr(
                small_social, model, [0, 3], eta=12, theta=600, seed=5, jobs=1
            )
        modern = estimate_truncated_spread_mrr(
            small_social,
            model,
            [0, 3],
            eta=12,
            theta=600,
            seed=5,
            context=ExecutionContext(jobs=1),
        )
        assert legacy == modern

    def test_legacy_crn_estimates_bit_identical(self, small_social, model):
        candidates = [[v] for v in range(12)]
        explicit = CRNSpreadEvaluator(
            small_social, model, n_sims=40, seed=9, mc_batch_size=64
        ).evaluate_many(candidates)
        via_context = CRNSpreadEvaluator(
            small_social,
            model,
            n_sims=40,
            seed=9,
            context=ExecutionContext(mc_batch_size=64),
        ).evaluate_many(candidates)
        assert np.array_equal(explicit, via_context)

    def test_legacy_run_eta_point_bit_identical(self, small_social_damped, model):
        realizations = [
            model.sample_realization(small_social_damped, rng)
            for rng in spawn_generators(21, 2)
        ]
        with pytest.deprecated_call():
            legacy = run_eta_point(
                small_social_damped,
                model,
                10,
                ("ASTI", "ATEUC"),
                realizations,
                max_samples=4000,
                seed=2,
                sample_batch_size=128,
            )
        modern = run_eta_point(
            small_social_damped,
            model,
            10,
            ("ASTI", "ATEUC"),
            realizations,
            max_samples=4000,
            seed=2,
            context=ExecutionContext(sample_batch_size=128),
        )
        for label in ("ASTI", "ATEUC"):
            assert [
                (r.seed_count, r.spread) for r in legacy[label].runs
            ] == [(r.seed_count, r.spread) for r in modern[label].runs]


class TestLifecycle:
    def test_owned_runtime_created_lazily_and_closed(self):
        ctx = ExecutionContext(jobs=1)
        assert ctx._runtime is None  # not created yet
        runtime = ctx.runtime
        assert runtime is not None and runtime.jobs == 1
        assert ctx.runtime is runtime  # cached
        ctx.close()
        assert ctx.runtime is None

    def test_attached_runtime_not_closed(self):
        with ParallelRuntime(1) as runtime:
            ctx = ExecutionContext().attach_runtime(runtime)
            assert ctx.runtime is runtime
            assert ctx.jobs == 1
            ctx.close()
            # Still open: owner closes it.
            runtime._check_open()

    def test_sequential_drops_jobs_but_keeps_policy(self):
        ctx = ExecutionContext(sample_batch_size=17, jobs=4, reuse_pool=False)
        seq = ctx.sequential()
        assert seq.jobs is None
        assert seq.sample_batch_size == 17
        assert seq.reuse_pool is False
        assert ctx.sequential() is not ctx
        no_jobs = ExecutionContext()
        assert no_jobs.sequential() is no_jobs
        ctx.close()

    def test_context_pickles_without_runtime(self):
        ctx = ExecutionContext(sample_batch_size=33, jobs=2)
        _ = ctx.runtime  # force creation
        clone = pickle.loads(pickle.dumps(ctx))
        assert clone.sample_batch_size == 33
        assert clone.jobs == 2
        assert clone._runtime is None  # never ships across processes
        ctx.close()

    def test_diagnostics_tally(self):
        ctx = ExecutionContext()
        ctx.tally("chunks", 3)
        ctx.tally("chunks", 2)
        ctx.record(stage="fill")
        assert ctx.diagnostics["chunks"] == 5
        assert ctx.diagnostics["stage"] == "fill"


class TestSharedValidation:
    """The jobs/batch-size validators live in one place; messages match."""

    def test_jobs_message_identical_across_layers(self):
        expected = "jobs must be >= 1, got 0"
        with pytest.raises(ConfigurationError, match=expected):
            ExecutionContext(jobs=0)
        with pytest.raises(ConfigurationError, match=expected):
            ExperimentConfig(dataset="nethept-sim", jobs=0)
        with pytest.raises(ConfigurationError, match=expected):
            ParallelRuntime(0)

    def test_sample_batch_size_message_identical_across_layers(self):
        expected = "sample_batch_size must be >= 1, got 0"
        with pytest.raises(ConfigurationError, match=expected):
            ExecutionContext(sample_batch_size=0)
        with pytest.raises(ConfigurationError, match=expected):
            ExperimentConfig(dataset="nethept-sim", sample_batch_size=0)

    def test_mc_batch_size_message_identical_across_layers(self):
        expected = "mc_batch_size must be >= 1, got -3"
        with pytest.raises(ConfigurationError, match=expected):
            ExecutionContext(mc_batch_size=-3)
        with pytest.raises(ConfigurationError, match=expected):
            ExperimentConfig(dataset="nethept-sim", mc_batch_size=-3)

    def test_cli_rejects_bad_jobs_with_the_same_message(self, capsys):
        from repro.cli import main

        code = main(
            [
                "solve",
                "--dataset",
                "nethept-sim",
                "--n",
                "60",
                "--eta",
                "5",
                "--jobs",
                "0",
            ]
        )
        assert code == 2
        assert "jobs must be >= 1, got 0" in capsys.readouterr().err

    def test_mc_tolerance_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="mc_tolerance must be > 0"):
            ExecutionContext(mc_tolerance=0.0)
        with pytest.raises(ConfigurationError, match="mc_tolerance must be > 0"):
            ExperimentConfig(dataset="nethept-sim", mc_tolerance=-1.0)

    def test_graph_storage_policy_validated(self):
        with pytest.raises(ConfigurationError, match="graph_storage"):
            ExecutionContext(graph_storage="sparse")


def test_run_sweep_smoke_with_context_policy():
    """End-to-end: run_sweep builds one context and completes."""
    config = quick_config(
        graph_n=150,
        realizations=2,
        algorithms=("ASTI", "ATEUC"),
        eta_fractions=(0.08,),
        max_samples=4000,
    )
    sweep = run_sweep(config)
    eta = sweep.eta_values[0]
    assert set(sweep.outcomes[eta]) == {"ASTI", "ATEUC"}
    for outcome in sweep.outcomes[eta].values():
        assert len(outcome.runs) == 2
