"""Unit tests for the dataset registry."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import datasets
from repro.graph import analysis


class TestRegistry:
    def test_four_datasets_in_paper_order(self):
        assert datasets.dataset_names() == [
            "nethept-sim",
            "epinions-sim",
            "youtube-sim",
            "livejournal-sim",
        ]

    def test_get_spec_round_trip(self):
        spec = datasets.get_spec("nethept-sim")
        assert spec.paper_name == "NetHEPT"
        assert not spec.directed

    def test_unknown_dataset(self):
        with pytest.raises(ConfigurationError):
            datasets.get_spec("facebook")

    def test_eta_fractions(self):
        assert datasets.eta_fractions_for("nethept-sim") == datasets.LARGE_ETA_FRACTIONS
        assert (
            datasets.eta_fractions_for("livejournal-sim")
            == datasets.SMALL_ETA_FRACTIONS
        )


class TestBuild:
    @pytest.mark.parametrize("name", datasets.dataset_names())
    def test_builds_at_small_scale(self, name):
        g = datasets.load_dataset(name, n=200, seed=0)
        assert g.n == 200
        assert g.m > 0

    def test_default_size(self):
        spec = datasets.get_spec("nethept-sim")
        g = spec.build(seed=0)
        assert g.n == spec.default_n

    def test_reproducible(self):
        a = datasets.load_dataset("nethept-sim", n=150, seed=0)
        b = datasets.load_dataset("nethept-sim", n=150, seed=0)
        assert a == b

    def test_seed_changes_graph(self):
        a = datasets.load_dataset("nethept-sim", n=150, seed=0)
        b = datasets.load_dataset("nethept-sim", n=150, seed=1)
        assert a != b

    def test_lwcc_fraction_respected(self):
        g = datasets.load_dataset("nethept-sim", n=400, seed=0)
        lwcc = analysis.largest_wcc_size(g)
        # Spec pins 45%; fragments are tiny so the core is the LWCC.
        assert lwcc == pytest.approx(0.45 * 400, abs=4)

    def test_fully_connected_dataset(self):
        g = datasets.load_dataset("youtube-sim", n=300, seed=0)
        assert analysis.largest_wcc_size(g) == 300

    def test_no_isolated_nodes(self):
        for name in datasets.dataset_names():
            g = datasets.load_dataset(name, n=150, seed=0)
            total_degree = g.in_degrees() + g.out_degrees()
            assert total_degree.min() >= 1, name

    def test_damping_applied(self):
        # All edge probabilities must be gamma / indeg <= gamma < 1.
        spec = datasets.get_spec("nethept-sim")
        g = spec.build(n=200, seed=0)
        _, _, probs = g.edge_arrays()
        assert probs.max() <= spec.damping + 1e-12

    def test_valid_lt_weighting(self):
        from repro.diffusion.lt import check_lt_validity

        for name in datasets.dataset_names():
            check_lt_validity(datasets.load_dataset(name, n=150, seed=0))

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            datasets.load_dataset("nethept-sim", n=0)
