"""Unit tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main
from repro.graph import generators
from repro.graph.io import write_edge_list


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0

    def test_solve_requires_graph_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--eta", "5"])


class TestDatasetsCommand:
    def test_prints_all_rows(self):
        code, text = run_cli(["datasets", "--n", "120"])
        assert code == 0
        for name in ("nethept-sim", "epinions-sim", "youtube-sim", "livejournal-sim"):
            assert name in text


class TestSolveCommand:
    def test_solve_on_dataset(self):
        code, text = run_cli(
            ["solve", "--dataset", "nethept-sim", "--n", "150", "--eta", "10",
             "--max-samples", "3000", "--seed", "1"]
        )
        assert code == 0
        assert "ASTI" in text
        assert "round 1" in text

    def test_solve_quiet(self):
        code, text = run_cli(
            ["solve", "--dataset", "nethept-sim", "--n", "150", "--eta", "5",
             "--max-samples", "3000", "--quiet"]
        )
        assert code == 0
        assert "round 1:" not in text  # the per-round log is suppressed

    def test_solve_batched(self):
        code, text = run_cli(
            ["solve", "--dataset", "nethept-sim", "--n", "150", "--eta", "10",
             "--batch-size", "4", "--max-samples", "3000"]
        )
        assert code == 0
        assert "ASTI-4" in text

    def test_solve_edge_list(self, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_list(generators.star_graph(20, probability=1.0), path)
        code, text = run_cli(["solve", "--edge-list", str(path), "--eta", "10"])
        assert code == 0
        assert "1 seeds" in text

    def test_infeasible_eta_reports_error(self, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_list(generators.path_graph(3), path)
        code, _ = run_cli(["solve", "--edge-list", str(path), "--eta", "99"])
        assert code == 2


class TestSweepCommand:
    def test_sweep_with_exports(self, tmp_path):
        csv_path = tmp_path / "runs.csv"
        json_path = tmp_path / "summary.json"
        code, text = run_cli(
            [
                "sweep", "--dataset", "nethept-sim", "--n", "120",
                "--fractions", "0.05", "--algorithms", "ASTI,ATEUC",
                "--realizations", "2", "--max-samples", "3000",
                "--out-csv", str(csv_path), "--out-json", str(json_path),
            ]
        )
        assert code == 0
        assert "mean seed count" in text
        assert csv_path.exists()
        assert json_path.exists()


class TestEstimateCommand:
    def test_estimate_with_mc_cross_check(self, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_list(generators.star_graph(12, probability=1.0), path)
        code, text = run_cli(
            ["estimate", "--edge-list", str(path), "--eta", "3",
             "--seeds", "0", "--theta", "2000", "--mc-samples", "200"]
        )
        assert code == 0
        assert "mRR estimate" in text
        assert "Monte-Carlo cross-check" in text


class TestJobsFlag:
    @pytest.mark.parametrize(
        "argv",
        [
            ["solve", "--dataset", "nethept-sim", "--n", "120", "--eta", "8",
             "--max-samples", "2000", "--jobs", "0"],
            ["sweep", "--dataset", "nethept-sim", "--n", "120",
             "--realizations", "2", "--jobs", "-3"],
            ["estimate", "--dataset", "nethept-sim", "--n", "120", "--eta", "8",
             "--seeds", "0", "--jobs", "0"],
        ],
    )
    def test_nonpositive_jobs_rejected_cleanly(self, argv, capsys):
        code, _ = run_cli(argv)
        assert code == 2
        assert "jobs" in capsys.readouterr().err

    def test_empty_pool_store_rejected_cleanly(self, capsys):
        # Path("") is the cwd — an empty --pool-store must error rather
        # than scatter store artifacts into the working tree.
        code, _ = run_cli(
            ["solve", "--dataset", "nethept-sim", "--n", "120", "--eta", "8",
             "--pool-store", ""]
        )
        assert code == 2
        assert "pool-store" in capsys.readouterr().err

    def test_solve_jobs_one_runs_chunk_seeded_in_process(self):
        code, text = run_cli(
            ["solve", "--dataset", "nethept-sim", "--n", "150", "--eta", "10",
             "--max-samples", "3000", "--seed", "1", "--jobs", "1", "--quiet"]
        )
        assert code == 0
        assert "ASTI" in text

    def test_estimate_jobs_matches_across_worker_counts(self, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_list(generators.star_graph(12, probability=1.0), path)
        argv = ["estimate", "--edge-list", str(path), "--eta", "3",
                "--seeds", "0", "--theta", "500"]
        _, one = run_cli(argv + ["--jobs", "1"])
        _, two = run_cli(argv + ["--jobs", "2"])
        assert one == two


class TestServeCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 0
        assert args.stdio is False
        assert args.jobs == 1
        assert args.max_in_flight == 4
        assert args.max_queue == 16
        assert args.kernel_backend == "auto"
        assert args.on_pool_failure == "degrade"

    def test_bad_config_rejected_cleanly(self, capsys):
        code, _ = run_cli(["serve", "--max-in-flight", "0"])
        assert code == 2
        assert "max_in_flight" in capsys.readouterr().err


class TestKeyboardInterrupt:
    def test_exit_130_no_traceback(self, monkeypatch, capsys):
        # Ctrl-C anywhere inside a command must exit with the SIGINT
        # convention (128 + 2) and a one-line notice, never a traceback.
        from repro import cli

        def interrupted(args, out):
            raise KeyboardInterrupt

        monkeypatch.setitem(cli._COMMANDS, "datasets", interrupted)
        code, _ = run_cli(["datasets"])
        assert code == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "Traceback" not in err
