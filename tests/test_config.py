"""Unit tests for experiment configs."""

import pytest

from repro.diffusion.ic import IndependentCascade
from repro.diffusion.lt import LinearThreshold
from repro.errors import ConfigurationError
from repro.experiments.config import (
    ExperimentConfig,
    PAPER_ALGORITHMS,
    paper_config,
    quick_config,
)


class TestExperimentConfig:
    def test_model_factory(self):
        ic = ExperimentConfig(dataset="nethept-sim", model_name="IC")
        lt = ExperimentConfig(dataset="nethept-sim", model_name="LT")
        assert isinstance(ic.make_model(), IndependentCascade)
        assert isinstance(lt.make_model(), LinearThreshold)

    def test_eta_values_rounded(self):
        config = ExperimentConfig(
            dataset="nethept-sim", eta_fractions=(0.01, 0.5)
        )
        assert config.eta_values(200) == (2, 100)

    def test_eta_values_floor_at_one(self):
        config = ExperimentConfig(dataset="nethept-sim", eta_fractions=(0.001,))
        assert config.eta_values(100) == (1,)

    def test_build_graph_uses_override(self):
        config = ExperimentConfig(dataset="nethept-sim", graph_n=123)
        assert config.build_graph().n == 123

    def test_scaled_copy(self):
        config = ExperimentConfig(dataset="nethept-sim")
        smaller = config.scaled(realizations=2)
        assert smaller.realizations == 2
        assert smaller.dataset == config.dataset

    def test_validation_errors(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(dataset="unknown")
        with pytest.raises(ConfigurationError):
            ExperimentConfig(dataset="nethept-sim", model_name="SIR")
        with pytest.raises(ConfigurationError):
            ExperimentConfig(dataset="nethept-sim", eta_fractions=(1.5,))
        with pytest.raises(ConfigurationError):
            ExperimentConfig(dataset="nethept-sim", algorithms=("MAGIC",))
        with pytest.raises(ConfigurationError):
            ExperimentConfig(dataset="nethept-sim", realizations=0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(dataset="nethept-sim", epsilon=0.0)


class TestPresets:
    def test_paper_config(self):
        config = paper_config("nethept-sim", "LT")
        assert config.realizations == 20
        assert config.epsilon == 0.5
        assert config.algorithms == PAPER_ALGORITHMS
        assert config.model_name == "LT"

    def test_paper_config_livejournal_small_etas(self):
        config = paper_config("livejournal-sim")
        assert max(config.eta_fractions) == 0.05

    def test_quick_config_is_small(self):
        config = quick_config()
        assert config.realizations <= 5
        assert config.graph_n <= 500
        assert config.max_samples is not None
