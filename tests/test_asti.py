"""Unit tests for the ASTI framework and the adaptive driver."""

import numpy as np
import pytest

from repro.core.asti import ASTI, run_adaptive_policy
from repro.core.policy import FirstNodeSelector, RandomNodeSelector
from repro.diffusion.realization import ICRealization
from repro.errors import ConfigurationError
from repro.graph import generators, weighting


class TestRunAdaptivePolicy:
    def test_reaches_target(self, ic_model, small_social_damped):
        result = run_adaptive_policy(
            small_social_damped, 20, ic_model, FirstNodeSelector(), seed=0
        )
        assert result.spread >= 20
        assert result.achieved_target
        assert result.seed_count == len(result.rounds)

    def test_fixed_realization_is_deterministic(self, ic_model, small_social_damped):
        phi = ic_model.sample_realization(small_social_damped, seed=5)
        a = run_adaptive_policy(
            small_social_damped, 15, ic_model, FirstNodeSelector(), realization=phi, seed=1
        )
        b = run_adaptive_policy(
            small_social_damped, 15, ic_model, FirstNodeSelector(), realization=phi, seed=2
        )
        # FirstNodeSelector is deterministic, so identical worlds give
        # identical runs regardless of the selector RNG.
        assert a.seeds == b.seeds
        assert a.spread == b.spread

    def test_round_records(self, ic_model, small_social_damped):
        result = run_adaptive_policy(
            small_social_damped, 10, ic_model, RandomNodeSelector(), seed=3
        )
        assert len(result.rounds) >= 1
        total_marginal = sum(r.observation.marginal_spread for r in result.rounds)
        assert total_marginal == result.spread

    def test_max_rounds_guard(self, ic_model):
        g = generators.path_graph(6, probability=0.01)
        # Nearly-blocked path: needs ~eta rounds; cap below that must raise.
        phi = ICRealization(g, np.zeros(g.m, dtype=bool))
        with pytest.raises(ConfigurationError):
            run_adaptive_policy(
                g, 5, ic_model, FirstNodeSelector(), realization=phi, max_rounds=2
            )

    def test_eta_validation(self, ic_model, path3):
        with pytest.raises(ConfigurationError):
            run_adaptive_policy(path3, 0, ic_model, FirstNodeSelector())
        with pytest.raises(ConfigurationError):
            run_adaptive_policy(path3, 9, ic_model, FirstNodeSelector())


class TestASTIFacade:
    def test_trim_instantiation(self, ic_model):
        asti = ASTI(ic_model, batch_size=1)
        assert asti.name == "ASTI"
        assert asti.selector.name == "TRIM"

    def test_trim_b_instantiation(self, ic_model):
        asti = ASTI(ic_model, batch_size=4)
        assert asti.name == "ASTI-4"
        assert asti.selector.name == "TRIM-B(4)"

    def test_run_reaches_target(self, ic_model, small_social_damped):
        result = ASTI(ic_model, epsilon=0.5).run(small_social_damped, eta=20, seed=11)
        assert result.spread >= 20
        assert result.policy_name == "ASTI"

    def test_batched_run_reaches_target(self, ic_model, small_social_damped):
        result = ASTI(ic_model, epsilon=0.5, batch_size=4).run(
            small_social_damped, eta=20, seed=11
        )
        assert result.spread >= 20
        assert result.policy_name == "ASTI-4"

    def test_batched_uses_fewer_rounds(self, ic_model, small_social_damped):
        phi = ic_model.sample_realization(small_social_damped, seed=21)
        single = ASTI(ic_model).run(small_social_damped, eta=30, realization=phi, seed=1)
        batched = ASTI(ic_model, batch_size=4).run(
            small_social_damped, eta=30, realization=phi, seed=1
        )
        assert len(batched.rounds) <= len(single.rounds)

    def test_reproducible_with_seed(self, ic_model, small_social_damped):
        phi = ic_model.sample_realization(small_social_damped, seed=8)
        a = ASTI(ic_model).run(small_social_damped, eta=15, realization=phi, seed=9)
        b = ASTI(ic_model).run(small_social_damped, eta=15, realization=phi, seed=9)
        assert a.seeds == b.seeds

    def test_lt_model(self, lt_model):
        g = weighting.weighted_cascade(
            generators.preferential_attachment(100, 2, seed=4, directed=False)
        )
        result = ASTI(lt_model).run(g, eta=10, seed=2)
        assert result.spread >= 10

    def test_marginal_spreads_sum_to_spread(self, ic_model, small_social_damped):
        result = ASTI(ic_model).run(small_social_damped, eta=25, seed=5)
        assert sum(result.marginal_spreads) == result.spread

    def test_invalid_construction(self, ic_model):
        with pytest.raises(ConfigurationError):
            ASTI(ic_model, epsilon=2.0)
        with pytest.raises(ConfigurationError):
            ASTI(ic_model, batch_size=0)

    def test_eta_equals_n(self, ic_model, path3):
        # Must activate everything: seeding every node always works.
        result = ASTI(ic_model).run(path3, eta=3, seed=0)
        assert result.spread == 3
