"""Unit tests for coverage-to-spread estimator conversions."""

import pytest

from repro.errors import ConfigurationError
from repro.sampling.estimators import (
    MRR_FIXED_CEIL,
    MRR_FIXED_FLOOR,
    MRR_RANDOMIZED_ROUNDING,
    mrr_truncated_estimate,
    rr_spread_estimate,
    rr_truncated_bias_factor,
)


class TestRRSpreadEstimate:
    def test_full_coverage(self):
        assert rr_spread_estimate(100, 100, 50) == pytest.approx(50.0)

    def test_zero_coverage(self):
        assert rr_spread_estimate(0, 100, 50) == 0.0

    def test_scaling(self):
        assert rr_spread_estimate(25, 100, 200) == pytest.approx(50.0)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            rr_spread_estimate(5, 0, 10)
        with pytest.raises(ConfigurationError):
            rr_spread_estimate(11, 10, 10)


class TestMRRTruncatedEstimate:
    def test_scaling_by_eta(self):
        assert mrr_truncated_estimate(50, 100, 8) == pytest.approx(4.0)

    def test_never_exceeds_eta(self):
        assert mrr_truncated_estimate(100, 100, 8) == pytest.approx(8.0)

    def test_invalid_eta(self):
        with pytest.raises(ConfigurationError):
            mrr_truncated_estimate(1, 10, 0)


class TestBiasFactor:
    def test_small_eta_large_bias(self):
        assert rr_truncated_bias_factor(10, 1000) == pytest.approx(0.01)

    def test_eta_equals_n_unbiased(self):
        assert rr_truncated_bias_factor(50, 50) == pytest.approx(1.0)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            rr_truncated_bias_factor(0, 10)
        with pytest.raises(ConfigurationError):
            rr_truncated_bias_factor(11, 10)


class TestGuaranteeBrackets:
    def test_randomized_rounding_bracket(self):
        # Theorem 3.3: [1 - 1/e, 1].
        assert MRR_RANDOMIZED_ROUNDING.low == pytest.approx(1 - 1 / 2.718281828, rel=1e-6)
        assert MRR_RANDOMIZED_ROUNDING.high == 1.0

    def test_fixed_rules_are_coarser(self):
        # The Remark after Corollary 3.4: both fixed rules lose — the floor
        # rule weakens the lower edge (1 - 1/sqrt(e) < 1 - 1/e) and the ceil
        # rule weakens the upper edge (2 > 1).
        assert MRR_FIXED_FLOOR.low < MRR_RANDOMIZED_ROUNDING.low
        assert MRR_FIXED_CEIL.high > MRR_RANDOMIZED_ROUNDING.high

    def test_contains(self):
        assert MRR_RANDOMIZED_ROUNDING.contains(0.8)
        assert not MRR_RANDOMIZED_ROUNDING.contains(1.2)
        assert MRR_RANDOMIZED_ROUNDING.contains(1.05, slack=0.1)
