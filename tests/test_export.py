"""Unit tests for CSV/JSON export of sweep results."""

import csv
import json

import pytest

from repro.experiments.config import quick_config
from repro.experiments.export import (
    RUN_COLUMNS,
    read_sweep_json,
    sweep_to_rows,
    sweep_to_summary,
    write_sweep_csv,
    write_sweep_json,
)
from repro.experiments.harness import run_sweep


@pytest.fixture(scope="module")
def sweep():
    return run_sweep(
        quick_config(
            graph_n=120,
            realizations=2,
            algorithms=("ASTI", "ATEUC"),
            eta_fractions=(0.05,),
            max_samples=3000,
            seed=0,
        )
    )


class TestRows:
    def test_row_count(self, sweep):
        rows = sweep_to_rows(sweep)
        # 1 eta x 2 algorithms x 2 realizations.
        assert len(rows) == 4

    def test_row_fields(self, sweep):
        for row in sweep_to_rows(sweep):
            assert set(row) == set(RUN_COLUMNS)
            assert row["dataset"] == "nethept-sim"
            assert row["model"] == "IC"
            assert row["seed_count"] >= 1


class TestCsv:
    def test_round_trip(self, sweep, tmp_path):
        path = tmp_path / "runs.csv"
        count = write_sweep_csv(sweep, path)
        with open(path, newline="") as handle:
            loaded = list(csv.DictReader(handle))
        assert len(loaded) == count == 4
        assert loaded[0]["algorithm"] in ("ASTI", "ATEUC")
        assert int(loaded[0]["eta"]) == sweep.eta_values[0]


class TestJson:
    def test_summary_structure(self, sweep):
        summary = sweep_to_summary(sweep)
        assert summary["dataset"] == "nethept-sim"
        assert len(summary["points"]) == 2  # 1 eta x 2 algorithms
        point = summary["points"][0]
        assert {"eta", "algorithm", "mean_seed_count", "feasibility_rate"} <= set(point)

    def test_file_round_trip(self, sweep, tmp_path):
        path = tmp_path / "summary.json"
        write_sweep_json(sweep, path)
        loaded = read_sweep_json(path)
        assert loaded == sweep_to_summary(sweep)

    def test_json_is_plain_types(self, sweep):
        # Everything must survive a strict JSON round trip (no numpy types).
        text = json.dumps(sweep_to_summary(sweep))
        assert "nethept-sim" in text
