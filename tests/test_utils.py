"""Unit tests for utils (rng, validation, timing, stats) and errors."""

import math
import time

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    InfeasibleTargetError,
    NodeNotFoundError,
    ReproError,
)
from repro.utils.rng import (
    as_generator,
    random_subset,
    spawn_generators,
    spawn_seed_sequences,
)
from repro.utils.stats import mean_confidence_interval, summarize
from repro.utils.timing import Deadline, Stopwatch, backoff_sleep, format_seconds
from repro.utils.validation import (
    check_fraction,
    check_positive_int,
    check_probability,
    check_range,
)


class TestRng:
    def test_as_generator_from_int(self):
        a = as_generator(5)
        b = as_generator(5)
        assert a.random() == b.random()

    def test_as_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert as_generator(g) is g

    def test_as_generator_none(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_spawn_independent_streams(self):
        streams = spawn_generators(7, 3)
        values = [g.random() for g in streams]
        assert len(set(values)) == 3

    def test_spawn_reproducible(self):
        a = [g.random() for g in spawn_generators(7, 3)]
        b = [g.random() for g in spawn_generators(7, 3)]
        assert a == b

    def test_spawn_from_generator(self):
        streams = spawn_generators(np.random.default_rng(3), 2)
        assert len(streams) == 2

    def test_spawn_negative_count(self):
        with pytest.raises(ValueError):
            spawn_generators(1, -1)

    def test_random_subset_distinct(self, rng):
        subset = random_subset(rng, 20, 10)
        assert len(set(subset.tolist())) == 10

    def test_random_subset_too_large(self, rng):
        with pytest.raises(ValueError):
            random_subset(rng, 3, 4)


class TestValidation:
    def test_positive_int(self):
        assert check_positive_int(3, "x") == 3
        with pytest.raises(ConfigurationError):
            check_positive_int(0, "x")
        with pytest.raises(ConfigurationError):
            check_positive_int(1.5, "x")
        with pytest.raises(ConfigurationError):
            check_positive_int(True, "x")

    def test_probability(self):
        assert check_probability(1.0, "p") == 1.0
        with pytest.raises(ConfigurationError):
            check_probability(0.0, "p")
        assert check_probability(0.0, "p", allow_zero=True) == 0.0
        with pytest.raises(ConfigurationError):
            check_probability(1.1, "p")

    def test_fraction(self):
        assert check_fraction(0.5, "eps") == 0.5
        with pytest.raises(ConfigurationError):
            check_fraction(0.0, "eps")
        with pytest.raises(ConfigurationError):
            check_fraction(1.0, "eps")

    def test_range(self):
        assert check_range(5, "k", 1, 10) == 5
        with pytest.raises(ConfigurationError):
            check_range(0, "k", 1, 10)
        with pytest.raises(ConfigurationError):
            check_range(11, "k", 1, 10)
        assert check_range(100, "k", 1) == 100


class TestStopwatch:
    def test_context_manager(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.01)
        assert sw.elapsed >= 0.01

    def test_accumulates(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.005)
        first = sw.elapsed
        with sw:
            time.sleep(0.005)
        assert sw.elapsed > first

    def test_running_property(self):
        sw = Stopwatch()
        assert not sw.running
        sw.start()
        assert sw.running
        sw.stop()
        assert not sw.running

    def test_double_start_rejected(self):
        sw = Stopwatch().start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            pass
        sw.reset()
        assert sw.elapsed == 0.0


class TestDeadline:
    def test_unbounded_never_expires(self):
        deadline = Deadline.after(None)
        assert deadline.unbounded
        assert deadline.remaining() is None
        assert not deadline.expired

    def test_remaining_counts_down(self):
        deadline = Deadline.after(60.0)
        remaining = deadline.remaining()
        assert remaining is not None
        assert 0.0 < remaining <= 60.0
        assert not deadline.expired

    def test_zero_budget_expires_immediately(self):
        deadline = Deadline.after(0.0)
        assert deadline.expired
        assert deadline.remaining() == 0.0

    def test_remaining_clamped_at_zero(self):
        deadline = Deadline.after(0.0)
        time.sleep(0.002)
        assert deadline.remaining() == 0.0

    def test_rejects_bad_budgets(self):
        with pytest.raises(ConfigurationError):
            Deadline.after(-1.0)
        with pytest.raises(ConfigurationError):
            Deadline.after(True)
        with pytest.raises(ConfigurationError):
            Deadline.after("soon")

    def test_frozen(self):
        deadline = Deadline.after(1.0)
        with pytest.raises(AttributeError):
            deadline.expires_at = 0.0


class TestBackoffSleep:
    def test_exponential_schedule(self):
        # base * 2**(attempt-1); a zero base returns without sleeping.
        assert backoff_sleep(0.0, 1) == 0.0
        assert backoff_sleep(0.0, 5) == 0.0
        assert backoff_sleep(0.001, 1) == pytest.approx(0.001)
        assert backoff_sleep(0.001, 3) == pytest.approx(0.004)

    def test_actually_sleeps(self):
        start = time.perf_counter()
        delay = backoff_sleep(0.01, 2)
        assert delay == pytest.approx(0.02)
        assert time.perf_counter() - start >= 0.02

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            backoff_sleep(-0.1, 1)
        with pytest.raises(ConfigurationError):
            backoff_sleep(0.1, 0)
        with pytest.raises(ConfigurationError):
            backoff_sleep(0.1, True)
        with pytest.raises(ConfigurationError):
            backoff_sleep(0.1, 1.5)


class TestFormatSeconds:
    def test_milliseconds(self):
        assert format_seconds(0.25) == "250ms"

    def test_seconds(self):
        assert format_seconds(12.34) == "12.3s"

    def test_minutes(self):
        assert format_seconds(125) == "2m05.0s"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_seconds(-1)


class TestStats:
    def test_summarize(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats.mean == pytest.approx(2.0)
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.count == 3
        assert stats.std == pytest.approx(1.0)

    def test_single_value(self):
        stats = summarize([4.0])
        assert stats.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_confidence_interval_brackets_mean(self):
        mean, low, high = mean_confidence_interval([1, 2, 3, 4, 5])
        assert low <= mean <= high
        assert mean == pytest.approx(3.0)

    def test_confidence_interval_single_value(self):
        mean, low, high = mean_confidence_interval([2.0])
        assert mean == low == high == 2.0

    def test_confidence_widens_with_level(self):
        data = [1, 2, 3, 4, 5, 6]
        _, low95, high95 = mean_confidence_interval(data, 0.95)
        _, low99, high99 = mean_confidence_interval(data, 0.99)
        assert high99 - low99 > high95 - low95

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([1, 2], confidence=1.5)

    def test_erfinv_accuracy(self):
        from repro.utils.stats import _erfinv

        for y in (-0.9, -0.3, 0.1, 0.5, 0.99):
            assert math.erf(_erfinv(y)) == pytest.approx(y, abs=1e-9)

    def test_erfinv_domain(self):
        from repro.utils.stats import _erfinv

        with pytest.raises(ValueError):
            _erfinv(1.0)


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(ConfigurationError, ReproError)
        assert issubclass(NodeNotFoundError, ReproError)
        assert issubclass(InfeasibleTargetError, ReproError)

    def test_node_not_found_message(self):
        err = NodeNotFoundError(7, 5)
        assert "7" in str(err) and "5" in str(err)
        assert err.node == 7

    def test_infeasible_message(self):
        err = InfeasibleTargetError(10, 4)
        assert err.eta == 10
        assert err.achievable == 4


class TestSpawnSeedSeqRobustness:
    def test_generator_without_seed_seq_raises_clear_error(self):
        from unittest import mock

        fake = mock.Mock(spec=np.random.Generator)
        fake.bit_generator = mock.Mock(spec=[])  # exposes no seed_seq at all
        with pytest.raises(ConfigurationError, match="seed_seq"):
            spawn_generators(fake, 2)

    def test_generator_with_none_seed_seq_raises_clear_error(self):
        from unittest import mock

        fake = mock.Mock(spec=np.random.Generator)
        fake.bit_generator = mock.Mock()
        fake.bit_generator.seed_seq = None
        with pytest.raises(ConfigurationError, match="default_rng"):
            spawn_generators(fake, 2)

    def test_seed_sequences_match_generators(self):
        seqs = spawn_seed_sequences(7, 3)
        direct = [np.random.default_rng(s).random() for s in seqs]
        via_generators = [g.random() for g in spawn_generators(7, 3)]
        assert direct == via_generators
