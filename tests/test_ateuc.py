"""Unit tests for the ATEUC non-adaptive baseline."""

import pytest

from repro.baselines.ateuc import ATEUC
from repro.errors import ConfigurationError
from repro.graph import generators


class TestATEUC:
    def test_estimated_spread_reaches_eta(self, ic_model, small_social_damped):
        result = ATEUC(ic_model).run(small_social_damped, eta=20, seed=0)
        assert result.estimated_spread >= 20 * 0.9
        assert result.seed_count >= 1
        assert result.samples >= 512

    def test_star_needs_one_seed(self, ic_model):
        g = generators.star_graph(30, probability=1.0)
        result = ATEUC(ic_model).run(g, eta=10, seed=1)
        assert result.seeds == [0]

    def test_lower_bound_at_most_upper(self, ic_model, small_social_damped):
        result = ATEUC(ic_model).run(small_social_damped, eta=25, seed=2)
        assert result.lower_bound_count <= result.seed_count

    def test_feasibility_not_guaranteed_per_realization(self, ic_model, small_social_damped):
        # The defining weakness of non-adaptive selection: evaluate the fixed
        # seed set on many worlds and it will miss eta on some of them.
        result = ATEUC(ic_model).run(small_social_damped, eta=30, seed=3)
        spreads = [
            ic_model.sample_realization(small_social_damped, seed=100 + i).spread(result.seeds)
            for i in range(20)
        ]
        assert min(spreads) < max(spreads)  # real variance across worlds

    def test_more_seeds_for_larger_eta(self, ic_model, small_social_damped):
        small = ATEUC(ic_model).run(small_social_damped, eta=10, seed=4)
        large = ATEUC(ic_model).run(small_social_damped, eta=40, seed=4)
        assert large.seed_count >= small.seed_count

    def test_eta_validation(self, ic_model, path3):
        with pytest.raises(ConfigurationError):
            ATEUC(ic_model).run(path3, eta=0)
        with pytest.raises(ConfigurationError):
            ATEUC(ic_model).run(path3, eta=9)

    def test_parameter_validation(self, ic_model):
        with pytest.raises(ConfigurationError):
            ATEUC(ic_model, gamma=0.5)
        with pytest.raises(ConfigurationError):
            ATEUC(ic_model, theta_initial=0)

    def test_reproducible(self, ic_model, small_social_damped):
        a = ATEUC(ic_model).run(small_social_damped, eta=20, seed=7)
        b = ATEUC(ic_model).run(small_social_damped, eta=20, seed=7)
        assert a.seeds == b.seeds

    def test_lt_model(self, lt_model, small_social_damped):
        result = ATEUC(lt_model).run(small_social_damped, eta=15, seed=8)
        assert result.estimated_spread >= 15 * 0.9

    def test_eta_equals_n(self, ic_model, path3):
        result = ATEUC(ic_model).run(path3, eta=3, seed=9)
        assert result.seed_count >= 1
