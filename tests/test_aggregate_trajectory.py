"""The benchmark-trajectory merger: dedup keep-latest, stable sort."""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from aggregate_trajectory import (  # noqa: E402
    aggregate,
    dedupe_history,
    entry_identity,
)


def entry(stamp, speedup, **config):
    row = {"timestamp": stamp, "speedup": speedup}
    row.update(config)
    return row


class TestDedupe:
    def test_same_config_keeps_latest(self):
        history = [
            entry("2026-01-01T00:00:00", 1.0, graph_n=100, jobs=2),
            entry("2026-01-02T00:00:00", 2.0, graph_n=100, jobs=2),
        ]
        out = dedupe_history(history)
        assert len(out) == 1 and out[0]["speedup"] == 2.0

    def test_latest_is_append_order_not_timestamp(self):
        # A re-run with a clock set backwards still supersedes.
        history = [
            entry("2026-01-02T00:00:00", 1.0, graph_n=100),
            entry("2026-01-01T00:00:00", 2.0, graph_n=100),
        ]
        out = dedupe_history(history)
        assert [e["speedup"] for e in out] == [2.0]

    def test_distinct_configs_all_kept(self):
        history = [
            entry("2026-01-01T00:00:00", 1.0, graph_n=100, jobs=2),
            entry("2026-01-01T00:00:01", 2.0, graph_n=100, jobs=4),
            entry("2026-01-01T00:00:02", 3.0, graph_n=200, jobs=2),
        ]
        assert len(dedupe_history(history)) == 3

    def test_measurements_do_not_affect_identity(self):
        a = entry("2026-01-01T00:00:00", 1.0, graph_n=100)
        b = entry("2026-01-02T00:00:00", 99.0, graph_n=100)
        assert entry_identity(a) == entry_identity(b)

    def test_anonymous_entries_never_dropped(self):
        history = [{"note": "x"}, {"note": "x"}, "raw", 42]
        assert len(dedupe_history(history)) == 4

    def test_stable_chronological_sort(self):
        history = [
            entry("2026-01-03T00:00:00", 3.0, graph_n=300),
            entry("2026-01-01T00:00:00", 1.0, graph_n=100),
            entry("2026-01-02T00:00:00", 2.0, graph_n=200),
        ]
        out = dedupe_history(history)
        assert [e["speedup"] for e in out] == [1.0, 2.0, 3.0]

    def test_equal_timestamps_keep_append_order(self):
        history = [
            entry("2026-01-01T00:00:00", 1.0, graph_n=100),
            entry("2026-01-01T00:00:00", 2.0, graph_n=200),
        ]
        out = dedupe_history(history)
        assert [e["speedup"] for e in out] == [1.0, 2.0]


class TestAggregate:
    def test_folds_and_dedupes(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        history = [
            entry("2026-01-01T00:00:00", 1.0, graph_n=100, jobs=2),
            entry("2026-01-02T00:00:00", 2.0, graph_n=100, jobs=2),
        ]
        (results / "some_gate.json").write_text(json.dumps(history))
        (results / "scalar.json").write_text(json.dumps({"single": True}))
        merged = aggregate(results)
        assert merged["entry_counts"]["some_gate"] == 1
        assert merged["latest"]["some_gate"]["speedup"] == 2.0
        assert merged["entry_counts"]["scalar"] == 1

    def test_real_results_directory_aggregates(self):
        merged = aggregate()
        assert "pool_store" in merged["gates"]
        assert merged["entry_counts"]["pool_store"] >= 1
