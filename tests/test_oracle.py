"""Unit tests for the oracle-greedy validators."""

import numpy as np
import pytest

from repro.baselines.oracle import ExactOracleSelector, MonteCarloOracleSelector
from repro.core.asti import run_adaptive_policy
from repro.graph import generators
from repro.graph.residual import initial_residual


class TestExactOracle:
    def test_truncated_picks_v2_or_v3_on_paper_example(self, ic_model, rng):
        # Example 2.3, by exact enumeration: truncated expected spreads are
        # (1.75, 2, 2, 1), so the oracle must avoid v1.
        g = generators.paper_example_graph()
        residual = initial_residual(g, eta=2)
        picked = ExactOracleSelector(ic_model, truncated=True).select(residual, rng)
        assert picked.nodes[0] in (1, 2)
        assert picked.diagnostics.estimated_gain == pytest.approx(2.0)

    def test_vanilla_picks_v1_on_paper_example(self, ic_model, rng):
        g = generators.paper_example_graph()
        residual = initial_residual(g, eta=2)
        picked = ExactOracleSelector(ic_model, truncated=False).select(residual, rng)
        assert picked.nodes[0] == 0
        assert picked.diagnostics.estimated_gain == pytest.approx(2.75)

    def test_truncated_oracle_never_needs_more_seeds_in_expectation(self, ic_model):
        """The paper's Example 2.3 punchline, end to end.

        Truncated-greedy expects 1 seed (v2/v3 always hit eta = 2); vanilla
        greedy expects 1.25 (v1 fails on phi_4 with probability 1/4).
        """
        g = generators.paper_example_graph()
        truncated_counts = []
        vanilla_counts = []
        for i in range(40):
            phi = ic_model.sample_realization(g, seed=1000 + i)
            t = run_adaptive_policy(
                g, 2, ic_model, ExactOracleSelector(ic_model, truncated=True),
                realization=phi, seed=i,
            )
            v = run_adaptive_policy(
                g, 2, ic_model, ExactOracleSelector(ic_model, truncated=False),
                realization=phi, seed=i,
            )
            truncated_counts.append(t.seed_count)
            vanilla_counts.append(v.seed_count)
        assert np.mean(truncated_counts) == pytest.approx(1.0)
        assert np.mean(vanilla_counts) > np.mean(truncated_counts)


class TestMonteCarloOracle:
    def test_agrees_with_exact_on_paper_example(self, ic_model, rng):
        g = generators.paper_example_graph()
        residual = initial_residual(g, eta=2)
        picked = MonteCarloOracleSelector(ic_model, samples=800).select(residual, rng)
        assert picked.nodes[0] in (1, 2)

    def test_vanilla_mode(self, ic_model, rng):
        g = generators.paper_example_graph()
        residual = initial_residual(g, eta=2)
        picked = MonteCarloOracleSelector(
            ic_model, samples=800, truncated=False
        ).select(residual, rng)
        assert picked.nodes[0] == 0

    def test_full_run_on_star(self, ic_model):
        g = generators.star_graph(12, probability=1.0)
        result = run_adaptive_policy(
            g, 6, ic_model, MonteCarloOracleSelector(ic_model, samples=50), seed=0
        )
        assert result.seed_count == 1
        assert result.seeds == [0]
