"""Unit tests for TRIM-B (Algorithm 3)."""

import math

import pytest

from repro.core.trim import TrimParameters
from repro.core.trim_b import TrimBParameters, TrimBSelector, batch_guarantee
from repro.errors import ConfigurationError, InfeasibleTargetError
from repro.graph import generators
from repro.graph.residual import initial_residual


class TestBatchGuarantee:
    def test_b_one_is_exact(self):
        assert batch_guarantee(1) == pytest.approx(1.0)

    def test_decreasing_toward_one_minus_inv_e(self):
        values = [batch_guarantee(b) for b in (1, 2, 4, 8, 64)]
        assert all(values[i] > values[i + 1] for i in range(len(values) - 1))
        assert values[-1] > 1 - 1 / math.e

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            batch_guarantee(0)


class TestTrimBParameters:
    def test_b_one_matches_trim(self):
        trim = TrimParameters(n=500, eta=50, epsilon=0.5)
        trimb = TrimBParameters(n=500, eta=50, epsilon=0.5, b=1)
        # With b = 1: rho_1 = 1 and ln C(n, 1) = ln n, so the formulas align.
        assert trimb.rho_b == pytest.approx(1.0)
        assert trimb.theta_max == pytest.approx(trim.theta_max, rel=1e-9)
        assert trimb.a1 == pytest.approx(trim.a1, rel=1e-9)
        assert trimb.a2 == pytest.approx(trim.a2, rel=1e-9)

    def test_larger_batches_fewer_sets(self):
        b1 = TrimBParameters(n=500, eta=50, epsilon=0.5, b=1)
        b8 = TrimBParameters(n=500, eta=50, epsilon=0.5, b=8)
        assert b8.theta_max < b1.theta_max

    def test_invalid_batch(self):
        with pytest.raises(ConfigurationError):
            TrimBParameters(n=10, eta=5, epsilon=0.5, b=0)
        with pytest.raises(InfeasibleTargetError):
            TrimBParameters(n=10, eta=5, epsilon=0.5, b=11)


class TestTrimBSelector:
    def test_batch_size_honored(self, ic_model, small_social_damped, rng):
        selector = TrimBSelector(ic_model, b=4, epsilon=0.5)
        residual = initial_residual(small_social_damped, eta=30)
        selection = selector.select(residual, rng)
        assert len(selection.nodes) == 4
        assert len(set(selection.nodes)) == 4

    def test_batch_clamped_to_eta(self, ic_model, small_social_damped, rng):
        # eta = 2 < b = 8: no point committing more than 2 seeds.
        selector = TrimBSelector(ic_model, b=8, epsilon=0.5)
        residual = initial_residual(small_social_damped, eta=2)
        selection = selector.select(residual, rng)
        assert len(selection.nodes) <= 2

    def test_tiny_residual_seeds_everything(self, ic_model, rng):
        g = generators.path_graph(3)
        residual = initial_residual(g, eta=3)
        selector = TrimBSelector(ic_model, b=8, epsilon=0.5)
        selection = selector.select(residual, rng)
        assert sorted(selection.nodes) == [0, 1, 2]

    def test_includes_hub_on_star(self, ic_model, rng):
        g = generators.star_graph(30, probability=1.0)
        residual = initial_residual(g, eta=20)
        selector = TrimBSelector(ic_model, b=2, epsilon=0.5)
        selection = selector.select(residual, rng)
        assert 0 in selection.nodes

    def test_name_reflects_batch(self, ic_model):
        assert TrimBSelector(ic_model, b=4).name == "TRIM-B(4)"
        assert TrimBSelector(ic_model, b=4).batch_size == 4

    def test_b_one_behaves_like_trim(self, ic_model, rng):
        # Degenerate batch: should pick the star hub exactly like TRIM.
        g = generators.star_graph(20, probability=1.0)
        residual = initial_residual(g, eta=10)
        selection = TrimBSelector(ic_model, b=1, epsilon=0.5).select(residual, rng)
        assert selection.nodes == [0]

    def test_diagnostics_populated(self, ic_model, small_social_damped, rng):
        selector = TrimBSelector(ic_model, b=4, epsilon=0.5)
        residual = initial_residual(small_social_damped, eta=30)
        d = selector.select(residual, rng).diagnostics
        assert d.samples_generated > 0
        assert d.estimated_gain > 0

    def test_invalid_construction(self, ic_model):
        with pytest.raises(ConfigurationError):
            TrimBSelector(ic_model, b=0)
        with pytest.raises(ConfigurationError):
            TrimBSelector(ic_model, b=2, epsilon=1.5)
