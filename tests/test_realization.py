"""Unit tests for live-edge realizations."""

import numpy as np
import pytest

from repro.diffusion.realization import ICRealization, LTRealization
from repro.errors import NodeNotFoundError
from repro.graph import generators


class TestICRealization:
    def test_all_live(self, path3):
        phi = ICRealization(path3, np.ones(path3.m, dtype=bool))
        assert phi.spread([0]) == 3
        assert phi.is_edge_live(0, 1)

    def test_all_blocked(self, path3):
        phi = ICRealization(path3, np.zeros(path3.m, dtype=bool))
        assert phi.spread([0]) == 1
        assert not phi.is_edge_live(0, 1)

    def test_partial(self, path3):
        # Edges are out-CSR ordered: (0->1), (1->2).  Block the second.
        phi = ICRealization(path3, np.array([True, False]))
        assert phi.reachable_from([0]).tolist() == [True, True, False]

    def test_truncated_spread(self, star6):
        phi = ICRealization(star6, np.ones(star6.m, dtype=bool))
        assert phi.truncated_spread([0], eta=4) == 4
        assert phi.truncated_spread([0], eta=10) == 6

    def test_allowed_mask_blocks_traversal(self, path3):
        phi = ICRealization(path3, np.ones(path3.m, dtype=bool))
        allowed = np.array([True, False, True])
        # Node 1 is off-limits, so the cascade cannot pass through it.
        reached = phi.reachable_from([0], allowed=allowed)
        assert reached.tolist() == [True, False, False]

    def test_seed_outside_allowed_is_inert(self, path3):
        phi = ICRealization(path3, np.ones(path3.m, dtype=bool))
        allowed = np.array([False, True, True])
        reached = phi.reachable_from([0], allowed=allowed)
        assert not reached.any()

    def test_bad_mask_shape(self, path3):
        with pytest.raises(ValueError):
            ICRealization(path3, np.ones(5, dtype=bool))

    def test_bad_seed(self, path3):
        phi = ICRealization(path3, np.ones(path3.m, dtype=bool))
        with pytest.raises(NodeNotFoundError):
            phi.spread([42])

    def test_live_edge_count(self, path3):
        phi = ICRealization(path3, np.array([True, False]))
        assert phi.live_edge_count() == 1


class TestLTRealization:
    def test_chain_choices(self, path3):
        phi = LTRealization(path3, np.array([-1, 0, 1]))
        assert phi.spread([0]) == 3
        assert phi.is_edge_live(0, 1)
        assert not phi.is_edge_live(1, 0)

    def test_no_choice_blocks(self, path3):
        phi = LTRealization(path3, np.array([-1, -1, 1]))
        assert phi.reachable_from([0]).tolist() == [True, False, False]

    def test_allowed_mask(self, path3):
        phi = LTRealization(path3, np.array([-1, 0, 1]))
        allowed = np.array([True, False, True])
        assert phi.reachable_from([0], allowed=allowed).tolist() == [True, False, False]

    def test_truncated_spread(self, path3):
        phi = LTRealization(path3, np.array([-1, 0, 1]))
        assert phi.truncated_spread([0], eta=2) == 2

    def test_bad_shape(self, path3):
        with pytest.raises(ValueError):
            LTRealization(path3, np.array([-1, 0]))

    def test_live_edge_count(self, path3):
        phi = LTRealization(path3, np.array([-1, 0, -1]))
        assert phi.live_edge_count() == 1

    def test_branching_structure(self):
        # Star: hub 0 -> leaves; each leaf chose the hub.
        g = generators.star_graph(4, probability=1.0)
        phi = LTRealization(g, np.array([-1, 0, 0, 0]))
        assert phi.spread([0]) == 4
        assert phi.spread([1]) == 1


class TestBatchReachableFrom:
    def _graph(self):
        from repro.graph import generators, weighting

        return weighting.scaled_cascade(
            generators.preferential_attachment(150, 2, seed=9, directed=False), 0.6
        )

    @pytest.mark.parametrize("model_fixture", ["ic_model", "lt_model"])
    def test_matches_per_session_loop(self, model_fixture, request):
        from repro.diffusion.realization import batch_reachable_from

        model = request.getfixturevalue(model_fixture)
        graph = self._graph()
        phis = [model.sample_realization(graph, seed=i) for i in range(5)]
        seeds_per = [[i, (7 * i + 3) % graph.n] for i in range(5)]
        allowed = np.ones((5, graph.n), dtype=bool)
        allowed[:, ::3] = False
        allowed[0] = True  # one unrestricted session in the batch
        batched = batch_reachable_from(phis, seeds_per, allowed)
        for row, (phi, seeds) in enumerate(zip(phis, seeds_per)):
            assert np.array_equal(
                batched[row], phi.reachable_from(seeds, allowed[row])
            )

    def test_mixed_models_fall_back(self, ic_model, lt_model):
        from repro.diffusion.realization import batch_reachable_from

        graph = self._graph()
        phis = [
            ic_model.sample_realization(graph, seed=0),
            lt_model.sample_realization(graph, seed=1),
        ]
        batched = batch_reachable_from(phis, [[0], [1]])
        for row, phi in enumerate(phis):
            assert np.array_equal(batched[row], phi.reachable_from([row]))

    def test_validation_errors(self, ic_model):
        from repro.diffusion.realization import batch_reachable_from
        from repro.errors import DiffusionError
        from repro.graph import generators

        graph = self._graph()
        other = generators.path_graph(3)
        phi = ic_model.sample_realization(graph, seed=0)
        with pytest.raises(DiffusionError):
            batch_reachable_from([], [])
        with pytest.raises(DiffusionError):
            batch_reachable_from([phi], [[0], [1]])
        with pytest.raises(DiffusionError):
            batch_reachable_from(
                [phi, ic_model.sample_realization(other, seed=1)], [[0], [0]]
            )
        with pytest.raises(DiffusionError):
            batch_reachable_from([phi], [[0]], allowed=np.ones((2, 2), dtype=bool))

    def test_out_of_range_seed_raises(self, ic_model):
        from repro.diffusion.realization import batch_reachable_from
        from repro.errors import NodeNotFoundError

        graph = self._graph()
        phi = ic_model.sample_realization(graph, seed=0)
        with pytest.raises(NodeNotFoundError):
            batch_reachable_from([phi], [[graph.n]])
