"""Unit tests for the linear threshold model."""

import numpy as np
import pytest

from repro.diffusion.lt import LinearThreshold, check_lt_validity
from repro.errors import DiffusionError
from repro.graph import generators, weighting
from repro.graph.builder import GraphBuilder


@pytest.fixture
def model():
    return LinearThreshold()


@pytest.fixture
def wc_social():
    topo = generators.preferential_attachment(80, 2, seed=3, directed=False)
    return weighting.weighted_cascade(topo)


class TestValidity:
    def test_weighted_cascade_is_valid(self, wc_social):
        check_lt_validity(wc_social)

    def test_violation_detected(self):
        builder = GraphBuilder(3)
        builder.add_edge(0, 2, 0.8)
        builder.add_edge(1, 2, 0.8)
        with pytest.raises(DiffusionError):
            check_lt_validity(builder.build())

    def test_model_checks_on_use(self, diamond, rng):
        # Diamond node 3 has incoming sum 2.0 — invalid for LT.
        with pytest.raises(DiffusionError):
            LinearThreshold().simulate(diamond, [0], rng)

    def test_validation_can_be_disabled(self, diamond, rng):
        # With validation off the process still runs (sampling clamps at the
        # first chosen edge); this is for power users only.
        model = LinearThreshold(validate=False)
        active = model.simulate(diamond, [0], rng)
        assert active[0]


class TestSimulate:
    def test_certain_path(self, model, path3, rng):
        assert model.simulate(path3, [0], rng).all()

    def test_direction_respected(self, model, path3, rng):
        assert model.simulate(path3, [2], rng).tolist() == [False, False, True]

    def test_probability_honored_statistically(self, model, rng):
        g = generators.path_graph(2, probability=0.3)
        hits = sum(model.simulate(g, [0], rng)[1] for _ in range(2000))
        assert 0.25 < hits / 2000 < 0.35

    def test_fan_in_thresholds(self, model, rng):
        # v2 with two incoming 0.5 edges: seeding both parents always
        # activates it (sum = 1.0 >= threshold, thresholds < 1 a.s.).
        builder = GraphBuilder(3)
        builder.add_edge(0, 2, 0.5)
        builder.add_edge(1, 2, 0.5)
        g = builder.build()
        for _ in range(50):
            assert model.simulate(g, [0, 1], rng)[2]

    def test_spread_on_wc_graph(self, model, wc_social, rng):
        spread = model.spread(wc_social, [0], rng)
        assert 1 <= spread <= wc_social.n


class TestSampleRealization:
    def test_each_node_keeps_at_most_one_edge(self, model, wc_social, rng):
        phi = model.sample_realization(wc_social, rng)
        assert phi.chosen_source.shape == (wc_social.n,)
        # chosen source must actually be an in-neighbor (or -1).
        for v in range(wc_social.n):
            chosen = phi.chosen_source[v]
            if chosen >= 0:
                assert chosen in wc_social.in_neighbors(v)

    def test_certain_path_realization(self, model, path3, rng):
        phi = model.sample_realization(path3, rng)
        assert phi.chosen_source[1] == 0
        assert phi.chosen_source[2] == 1
        assert phi.chosen_source[0] == -1

    def test_selection_frequency(self, model, rng):
        # Node 2 with incoming 0.5/0.5 from nodes 0 and 1: each should be
        # chosen about half the time.
        builder = GraphBuilder(3)
        builder.add_edge(0, 2, 0.5)
        builder.add_edge(1, 2, 0.5)
        g = builder.build()
        picks = [model.sample_realization(g, rng).chosen_source[2] for _ in range(600)]
        fraction_zero = np.mean([p == 0 for p in picks])
        assert 0.4 < fraction_zero < 0.6


class TestReverseSample:
    def test_certain_path_walk(self, model, path3, rng):
        scratch = np.zeros(3, dtype=bool)
        visited = model.reverse_sample(path3, np.array([2]), rng, scratch)
        assert sorted(visited.tolist()) == [0, 1, 2]
        assert not scratch.any()

    def test_walk_is_single_branch(self, model, rng):
        # Node 3 has two incoming certain-ish edges; a reverse walk keeps
        # at most one of them per visit.
        builder = GraphBuilder(4)
        builder.add_edge(0, 3, 0.5)
        builder.add_edge(1, 3, 0.5)
        builder.add_edge(2, 0, 1.0)
        g = builder.build()
        scratch = np.zeros(4, dtype=bool)
        visited = model.reverse_sample(g, np.array([3]), rng, scratch)
        assert 3 in visited
        assert not (0 in visited and 1 in visited)

    def test_multi_root(self, model, two_components, rng):
        scratch = np.zeros(4, dtype=bool)
        visited = model.reverse_sample(two_components, np.array([1, 3]), rng, scratch)
        assert sorted(visited.tolist()) == [0, 1, 2, 3]

    def test_scratch_reset(self, model, wc_social, rng):
        scratch = np.zeros(wc_social.n, dtype=bool)
        for _ in range(20):
            model.reverse_sample(
                wc_social, np.array([rng.integers(wc_social.n)]), rng, scratch
            )
            assert not scratch.any()
