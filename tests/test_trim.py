"""Unit tests for TRIM (Algorithm 2)."""

import math

import numpy as np
import pytest

from repro.core.trim import TrimParameters, TrimSelector
from repro.errors import ConfigurationError, InfeasibleTargetError
from repro.graph import generators, weighting
from repro.graph.residual import initial_residual


class TestTrimParameters:
    def test_line1_delta_and_eps_hat(self):
        p = TrimParameters(n=1000, eta=100, epsilon=0.5)
        one_minus_inv_e = 1 - 1 / math.e
        assert p.delta == pytest.approx(0.5 / (100 * one_minus_inv_e * 0.5 * 100))
        assert p.eps_hat == pytest.approx(99 * 0.5 / 99.5)

    def test_theta_schedule_monotone(self):
        p = TrimParameters(n=1000, eta=100, epsilon=0.5)
        sizes = [p.pool_size_at(t) for t in range(p.iterations)]
        assert all(sizes[i] <= sizes[i + 1] for i in range(len(sizes) - 1))
        assert sizes[0] == p.theta_0
        assert sizes[-1] <= math.ceil(p.theta_max)

    def test_iterations_cover_theta_max(self):
        p = TrimParameters(n=1000, eta=100, epsilon=0.5)
        assert p.theta_0 * 2 ** (p.iterations - 1) >= p.theta_max

    def test_smaller_epsilon_needs_more_samples(self):
        loose = TrimParameters(n=1000, eta=100, epsilon=0.5)
        tight = TrimParameters(n=1000, eta=100, epsilon=0.1)
        assert tight.theta_max > loose.theta_max

    def test_max_samples_caps(self):
        p = TrimParameters(n=1000, eta=100, epsilon=0.5, max_samples=500)
        assert p.theta_max == 500

    def test_invalid_epsilon(self):
        with pytest.raises(ConfigurationError):
            TrimParameters(n=10, eta=5, epsilon=0.0)
        with pytest.raises(ConfigurationError):
            TrimParameters(n=10, eta=5, epsilon=1.0)

    def test_infeasible_eta(self):
        with pytest.raises(InfeasibleTargetError):
            TrimParameters(n=10, eta=11, epsilon=0.5)


class TestTrimSelector:
    def test_selects_obvious_hub(self, ic_model, rng):
        # Certain star: the hub dominates every other node.
        g = generators.star_graph(20, probability=1.0)
        residual = initial_residual(g, eta=10)
        selection = TrimSelector(ic_model, epsilon=0.5).select(residual, rng)
        assert selection.nodes == [0]
        assert selection.diagnostics.samples_generated > 0

    def test_guarantee_holds_on_paper_example(self, ic_model):
        """Lemma 3.6's guarantee on Example 2.3.

        Note TRIM is *not* required to match the exact oracle here: the
        binary mRR estimator satisfies only the [1 - 1/e, 1] bracket of
        Theorem 3.3, and on this graph Pr[v1 in R] = 0.875 actually exceeds
        Pr[v2 in R] = 5/6, so v1 is a legitimate pick.  What must hold is
        that the picked node's exact truncated spread is within
        (1 - 1/e)(1 - eps) of the optimum (2.0, from v2/v3).
        """
        from repro.diffusion.exact import exact_expected_truncated_spread

        g = generators.paper_example_graph()
        residual = initial_residual(g, eta=2)
        epsilon = 0.3
        floor = (1 - 1 / math.e) * (1 - epsilon) * 2.0
        for seed in range(8):
            rng = np.random.default_rng(seed)
            selection = TrimSelector(ic_model, epsilon=epsilon).select(residual, rng)
            value = exact_expected_truncated_spread(
                g, ic_model, selection.nodes, eta=2
            )
            assert value >= floor
            assert selection.nodes[0] in (0, 1, 2)  # never the dominated v4

    def test_single_node_shortcut(self, ic_model, rng):
        g = generators.path_graph(1)
        residual = initial_residual(g, eta=1)
        selection = TrimSelector(ic_model).select(residual, rng)
        assert selection.nodes == [0]
        assert selection.diagnostics.samples_generated == 0

    def test_infeasible_shortfall_raises(self, ic_model, rng):
        from repro.graph.residual import ResidualGraph

        g = generators.path_graph(3)
        residual = ResidualGraph(
            graph=g,
            original_ids=np.arange(3),
            shortfall=5,
            round_index=1,
        )
        with pytest.raises(InfeasibleTargetError):
            TrimSelector(ic_model).select(residual, rng)

    def test_diagnostics_reasonable(self, ic_model, small_social_damped, rng):
        residual = initial_residual(small_social_damped, eta=12)
        selection = TrimSelector(ic_model, epsilon=0.5).select(residual, rng)
        d = selection.diagnostics
        assert d.samples_generated >= 1
        assert d.iterations >= 1
        assert 0.0 <= d.certified_ratio <= 1.0
        assert 0.0 <= d.estimated_gain <= 12.0

    def test_max_samples_respected(self, ic_model, small_social_damped, rng):
        selector = TrimSelector(ic_model, epsilon=0.5, max_samples=64)
        residual = initial_residual(small_social_damped, eta=12)
        selection = selector.select(residual, rng)
        # Doubling can land at most one doubling past the cap's iteration
        # boundary; the cap bounds theta_max so the pool stays near 64.
        assert selection.diagnostics.samples_generated <= 130

    def test_strict_budget_raises_when_uncertified(self, ic_model, small_social_damped, rng):
        from repro.errors import BudgetExhaustedError

        selector = TrimSelector(
            ic_model, epsilon=0.05, max_samples=8, strict_budget=True
        )
        residual = initial_residual(small_social_damped, eta=12)
        with pytest.raises(BudgetExhaustedError):
            selector.select(residual, rng)

    def test_lt_model_supported(self, lt_model, rng):
        g = weighting.weighted_cascade(
            generators.preferential_attachment(60, 2, seed=2, directed=False)
        )
        residual = initial_residual(g, eta=6)
        selection = TrimSelector(lt_model, epsilon=0.5).select(residual, rng)
        assert 0 <= selection.nodes[0] < 60
