"""Unit tests for the adaptive session state machine."""

import numpy as np
import pytest

from repro.core.session import AdaptiveSession
from repro.diffusion.realization import ICRealization
from repro.errors import ConfigurationError
from repro.graph import generators


def certain_world(graph):
    return ICRealization(graph, np.ones(graph.m, dtype=bool))


class TestConstruction:
    def test_initial_state(self, path3):
        session = AdaptiveSession(path3, eta=2, realization=certain_world(path3))
        assert session.activated_count == 0
        assert not session.finished
        assert session.round_index == 1
        assert session.residual.n == 3

    def test_eta_bounds(self, path3):
        with pytest.raises(ConfigurationError):
            AdaptiveSession(path3, eta=0, realization=certain_world(path3))
        with pytest.raises(ConfigurationError):
            AdaptiveSession(path3, eta=4, realization=certain_world(path3))

    def test_realization_graph_identity_enforced(self, path3):
        other = generators.path_graph(3)
        with pytest.raises(ConfigurationError):
            AdaptiveSession(path3, eta=2, realization=certain_world(other))


class TestObserve:
    def test_full_cascade_observed(self, path3):
        session = AdaptiveSession(path3, eta=3, realization=certain_world(path3))
        obs = session.observe([0])
        assert sorted(obs.newly_activated.tolist()) == [0, 1, 2]
        assert obs.marginal_spread == 3
        assert session.finished

    def test_partial_world(self, path3):
        live = np.array([True, False])  # 0->1 live, 1->2 blocked
        phi = ICRealization(path3, live)
        session = AdaptiveSession(path3, eta=3, realization=phi)
        obs = session.observe([0])
        assert sorted(obs.newly_activated.tolist()) == [0, 1]
        assert not session.finished
        assert session.residual.n == 1
        assert session.residual.shortfall == 1

    def test_local_ids_translated_across_rounds(self):
        g = generators.path_graph(4)
        live = np.array([True, False, True])  # 0->1 live, 1->2 blocked, 2->3 live
        phi = ICRealization(g, live)
        session = AdaptiveSession(g, eta=4, realization=phi)
        session.observe([0])          # activates originals {0, 1}
        # Residual holds originals {2, 3}; local 0 is original 2.
        obs = session.observe([0])
        assert sorted(obs.newly_activated.tolist()) == [2, 3]
        assert session.finished

    def test_seeds_committed_order(self, two_components):
        phi = certain_world(two_components)
        session = AdaptiveSession(two_components, eta=4, realization=phi)
        session.observe([0])   # original 0 (activates 0, 1)
        session.observe([0])   # residual local 0 == original 2
        assert session.seeds_committed == [0, 2]

    def test_observation_metadata(self, path3):
        session = AdaptiveSession(path3, eta=2, realization=certain_world(path3))
        obs = session.observe([0])
        assert obs.round_index == 1
        assert obs.shortfall_before == 2
        assert obs.total_activated == 3

    def test_cannot_observe_after_finish(self, path3):
        session = AdaptiveSession(path3, eta=1, realization=certain_world(path3))
        session.observe([0])
        with pytest.raises(ConfigurationError):
            session.observe([0])

    def test_empty_seed_batch_rejected(self, path3):
        session = AdaptiveSession(path3, eta=2, realization=certain_world(path3))
        with pytest.raises(ConfigurationError):
            session.observe([])

    def test_history_accumulates(self, two_components):
        session = AdaptiveSession(
            two_components, eta=4, realization=certain_world(two_components)
        )
        session.observe([0])
        session.observe([0])
        assert len(session.history) == 2
        assert session.history[0].round_index == 1
        assert session.history[1].round_index == 2

    def test_batch_observation(self, two_components):
        session = AdaptiveSession(
            two_components, eta=4, realization=certain_world(two_components)
        )
        obs = session.observe([0, 2])
        assert obs.marginal_spread == 4
        assert session.finished


class TestAdaptiveSessionBatch:
    def _worlds(self, graph, model, count, seed=60):
        return [model.sample_realization(graph, seed=seed + i) for i in range(count)]

    def test_matches_sequential_sessions(self, small_social_damped, ic_model):
        from repro.core.session import AdaptiveSessionBatch

        phis = self._worlds(small_social_damped, ic_model, 4)
        batch = AdaptiveSessionBatch(small_social_damped, 25, phis)
        singles = [
            AdaptiveSession(small_social_damped, 25, phi) for phi in phis
        ]
        rng = np.random.default_rng(1)
        while not batch.all_finished:
            selections = {
                sid: [int(rng.integers(batch.sessions[sid].residual.n))]
                for sid in batch.active_indices
            }
            observations = batch.observe_batch(selections)
            for sid, seeds in selections.items():
                reference = singles[sid].observe(seeds)
                assert np.array_equal(
                    reference.newly_activated, observations[sid].newly_activated
                )
                assert reference.total_activated == observations[sid].total_activated
        assert all(s.finished for s in singles)

    def test_sessions_finish_at_different_times(self, two_components):
        from repro.core.session import AdaptiveSessionBatch

        fast = certain_world(two_components)
        batch = AdaptiveSessionBatch(two_components, 2, [fast, fast])
        batch.observe_batch({0: [0], 1: [1]})  # session 0 cascades 0 -> 1
        assert batch.sessions[0].finished
        assert not batch.sessions[1].finished
        assert batch.active_indices == [1]
        batch.observe_batch({1: [0]})
        assert batch.all_finished

    def test_finished_session_rejected(self, path3):
        from repro.core.session import AdaptiveSessionBatch

        batch = AdaptiveSessionBatch(path3, 1, [certain_world(path3)])
        batch.observe_batch({0: [0]})
        with pytest.raises(ConfigurationError):
            batch.observe_batch({0: [0]})

    def test_empty_round_rejected(self, path3):
        from repro.core.session import AdaptiveSessionBatch

        batch = AdaptiveSessionBatch(path3, 2, [certain_world(path3)])
        with pytest.raises(ConfigurationError):
            batch.observe_batch({})

    def test_needs_a_realization(self, path3):
        from repro.core.session import AdaptiveSessionBatch

        with pytest.raises(ConfigurationError):
            AdaptiveSessionBatch(path3, 2, [])
