"""Unit tests for the AdaptIM baseline."""

import pytest

from repro.baselines.adaptim import AdaptIM
from repro.errors import ConfigurationError


class TestAdaptIM:
    def test_reaches_target(self, ic_model, small_social_damped):
        result = AdaptIM(ic_model, epsilon=0.5).run(small_social_damped, eta=20, seed=1)
        assert result.spread >= 20
        assert result.policy_name == "AdaptIM"

    def test_shares_ground_truth_with_asti(self, ic_model, small_social_damped):
        from repro.core.asti import ASTI

        phi = ic_model.sample_realization(small_social_damped, seed=17)
        adaptim = AdaptIM(ic_model).run(small_social_damped, eta=25, realization=phi, seed=2)
        asti = ASTI(ic_model).run(small_social_damped, eta=25, realization=phi, seed=2)
        # Identical worlds: both must reach the target; seed counts comparable
        # (paper: AdaptIM is empirically close to ASTI in seed count).
        assert adaptim.spread >= 25 and asti.spread >= 25
        assert adaptim.seed_count <= 3 * max(1, asti.seed_count)

    def test_generates_more_samples_than_asti_late(self, ic_model, small_social_damped):
        """The efficiency gap (paper Sec. 6.2): RR count ~ n_i vs eta_i.

        On a shared world, AdaptIM's total RR sets should exceed ASTI's
        total mRR sets once several rounds are needed.
        """
        from repro.core.asti import ASTI

        phi = ic_model.sample_realization(small_social_damped, seed=23)
        adaptim = AdaptIM(ic_model).run(small_social_damped, eta=30, realization=phi, seed=3)
        asti = ASTI(ic_model).run(small_social_damped, eta=30, realization=phi, seed=3)
        if len(asti.rounds) >= 3:
            assert adaptim.total_samples >= asti.total_samples

    def test_reproducible(self, ic_model, small_social_damped):
        phi = ic_model.sample_realization(small_social_damped, seed=29)
        a = AdaptIM(ic_model).run(small_social_damped, eta=15, realization=phi, seed=4)
        b = AdaptIM(ic_model).run(small_social_damped, eta=15, realization=phi, seed=4)
        assert a.seeds == b.seeds

    def test_invalid_epsilon(self, ic_model):
        with pytest.raises(ConfigurationError):
            AdaptIM(ic_model, epsilon=0.0)
