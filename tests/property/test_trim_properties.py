"""Property-based tests on the TRIM / TRIM-B parameter formulas.

Algorithm 2/3's Lines 1-5 encode a sampling schedule; these properties pin
the monotonicities the paper's analysis relies on, over the whole (n, eta,
epsilon, b) space rather than a few fixtures.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core.trim import TrimParameters
from repro.core.trim_b import TrimBParameters, batch_guarantee

sizes = st.integers(min_value=2, max_value=100_000)
epsilons = st.sampled_from([0.1, 0.25, 0.5, 0.75, 0.9])


@st.composite
def instances(draw):
    n = draw(sizes)
    eta = draw(st.integers(min_value=1, max_value=n))
    epsilon = draw(epsilons)
    return n, eta, epsilon


@given(instances())
@settings(max_examples=100, deadline=None)
def test_trim_parameter_sanity(instance):
    n, eta, epsilon = instance
    p = TrimParameters(n, eta, epsilon)
    assert 0.0 < p.delta < 1.0
    assert 0.0 < p.eps_hat < 1.0
    assert 1 <= p.theta_0 <= math.ceil(p.theta_max)
    assert p.iterations >= 1
    # The schedule reaches theta_max within the declared iterations.
    assert p.pool_size_at(p.iterations - 1) >= min(p.theta_max, p.theta_0)
    assert p.pool_size_at(p.iterations) <= math.ceil(p.theta_max)
    # a1 strengthens a2 by the union bound over n nodes.
    assert p.a1 > p.a2


@given(instances())
@settings(max_examples=60, deadline=None)
def test_trim_theta_decreasing_in_epsilon(instance):
    n, eta, _ = instance
    loose = TrimParameters(n, eta, 0.75)
    tight = TrimParameters(n, eta, 0.25)
    assert tight.theta_max > loose.theta_max


@given(instances())
@settings(max_examples=60, deadline=None)
def test_trim_schedule_monotone(instance):
    n, eta, epsilon = instance
    p = TrimParameters(n, eta, epsilon)
    sizes_at = [p.pool_size_at(t) for t in range(p.iterations)]
    assert all(a <= b for a, b in zip(sizes_at, sizes_at[1:]))


@given(instances(), st.integers(min_value=1, max_value=16))
@settings(max_examples=80, deadline=None)
def test_trim_b_parameter_sanity(instance, b):
    n, eta, epsilon = instance
    if b > n:
        return
    p = TrimBParameters(n, eta, epsilon, b)
    assert 0.0 < p.rho_b <= 1.0
    assert 1 <= p.theta_0 <= math.ceil(p.theta_max)
    assert p.a1 >= p.a2


@given(st.integers(min_value=1, max_value=64))
@settings(max_examples=60, deadline=None)
def test_batch_guarantee_bounds(b):
    rho = batch_guarantee(b)
    assert 1 - 1 / math.e < rho <= 1.0
    if b > 1:
        assert rho < batch_guarantee(b - 1)


@given(instances())
@settings(max_examples=40, deadline=None)
def test_trim_b_with_b_one_equals_trim(instance):
    n, eta, epsilon = instance
    trim = TrimParameters(n, eta, epsilon)
    trim_b = TrimBParameters(n, eta, epsilon, 1)
    assert math.isclose(trim.theta_max, trim_b.theta_max, rel_tol=1e-9)
    assert math.isclose(trim.a1, trim_b.a1, rel_tol=1e-9)
    assert math.isclose(trim.a2, trim_b.a2, rel_tol=1e-9)


@given(instances(), st.integers(min_value=2, max_value=16))
@settings(max_examples=60, deadline=None)
def test_larger_batches_need_fewer_sets_per_round(instance, b):
    n, eta, epsilon = instance
    if b > n:
        return
    single = TrimBParameters(n, eta, epsilon, 1)
    batched = TrimBParameters(n, eta, epsilon, b)
    assert batched.theta_max < single.theta_max
