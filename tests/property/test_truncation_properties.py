"""Property-based tests on the truncation algebra (paper Section 2.3)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.diffusion.realization import ICRealization
from repro.graph.digraph import DiGraph


@st.composite
def worlds(draw, max_nodes=10, max_edges=20):
    """A random graph with a fixed random live-edge world."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    pair = st.tuples(
        st.integers(0, n - 1), st.integers(0, n - 1)
    ).filter(lambda t: t[0] != t[1])
    pairs = draw(st.lists(pair, max_size=max_edges, unique=True))
    graph = DiGraph.from_edges(n, [(u, v, 0.5) for u, v in pairs])
    live = draw(
        st.lists(st.booleans(), min_size=graph.m, max_size=graph.m)
    )
    return graph, ICRealization(graph, np.asarray(live, dtype=bool))


@given(worlds(), st.data())
@settings(max_examples=80, deadline=None)
def test_truncation_definition(world, data):
    graph, phi = world
    eta = data.draw(st.integers(1, graph.n))
    seeds = data.draw(
        st.lists(st.integers(0, graph.n - 1), min_size=1, max_size=3, unique=True)
    )
    assert phi.truncated_spread(seeds, eta) == min(phi.spread(seeds), eta)


@given(worlds(), st.data())
@settings(max_examples=60, deadline=None)
def test_spread_monotone_in_seeds(world, data):
    graph, phi = world
    seeds = data.draw(
        st.lists(st.integers(0, graph.n - 1), min_size=1, max_size=3, unique=True)
    )
    extra = data.draw(st.integers(0, graph.n - 1))
    superset = sorted(set(seeds) | {extra})
    assert phi.spread(superset) >= phi.spread(seeds)


@given(worlds(), st.data())
@settings(max_examples=60, deadline=None)
def test_marginal_truncated_spread_identity(world, data):
    """Equation (5): Gamma(S | S') = min{I(S | S'), eta_i} before the target.

    We verify on the realized (deterministic) level: observing S' first and
    then measuring S inside the residual equals the combined-minus-prefix
    difference of truncated spreads.
    """
    graph, phi = world
    prior = data.draw(
        st.lists(st.integers(0, graph.n - 1), min_size=1, max_size=2, unique=True)
    )
    seeds = data.draw(
        st.lists(st.integers(0, graph.n - 1), min_size=1, max_size=2, unique=True)
    )
    eta = data.draw(st.integers(1, graph.n))
    spread_prior = phi.spread(prior)
    if spread_prior >= eta:
        return  # identity only claimed before reaching the target
    combined = phi.truncated_spread(sorted(set(prior) | set(seeds)), eta)
    marginal = combined - phi.truncated_spread(prior, eta)
    # Residual-side computation: spread of `seeds` through inactive nodes.
    inactive = ~phi.reachable_from(prior)
    residual_spread = int(phi.reachable_from(seeds, allowed=inactive).sum())
    eta_residual = eta - spread_prior
    assert marginal == min(residual_spread, eta_residual)


@given(worlds(), st.data())
@settings(max_examples=60, deadline=None)
def test_observation_partition(world, data):
    """Sequential observations never double-count nodes."""
    graph, phi = world
    first = data.draw(st.integers(0, graph.n - 1))
    second = data.draw(st.integers(0, graph.n - 1))
    reached_first = phi.reachable_from([first])
    inactive = ~reached_first
    reached_second = phi.reachable_from([second], allowed=inactive)
    assert not (reached_first & reached_second).any()
    union = phi.reachable_from([first]) | reached_second
    total = int(union.sum())
    # Union of sequential observations is within [max, sum] of individuals.
    assert total <= phi.spread([first]) + phi.spread([second])
    assert total >= phi.spread([first])
