"""Property-based tests on graph invariants."""

import io

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graph.digraph import DiGraph, gather_csr_rows, nodes_reachable_from
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.residual import initial_residual, shrink_residual


@st.composite
def random_graphs(draw, max_nodes=12, max_edges=30):
    """Random simple digraphs with probabilities in (0, 1]."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    pair = st.tuples(
        st.integers(0, n - 1), st.integers(0, n - 1)
    ).filter(lambda t: t[0] != t[1])
    pairs = draw(st.lists(pair, max_size=max_edges, unique=True))
    probs = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=1.0),
            min_size=len(pairs),
            max_size=len(pairs),
        )
    )
    return DiGraph.from_edges(n, [(u, v, p) for (u, v), p in zip(pairs, probs)])


@given(random_graphs())
@settings(max_examples=60, deadline=None)
def test_degree_sums_equal_edge_count(graph):
    assert int(graph.out_degrees().sum()) == graph.m
    assert int(graph.in_degrees().sum()) == graph.m


@given(random_graphs())
@settings(max_examples=60, deadline=None)
def test_reverse_swaps_degree_vectors(graph):
    reverse = graph.reverse()
    assert np.array_equal(reverse.out_degrees(), graph.in_degrees())
    assert np.array_equal(reverse.in_degrees(), graph.out_degrees())


@given(random_graphs())
@settings(max_examples=60, deadline=None)
def test_edge_arrays_round_trip(graph):
    src, dst, probs = graph.edge_arrays()
    rebuilt = DiGraph.from_arrays(graph.n, src, dst, probs)
    assert rebuilt == graph


@given(random_graphs())
@settings(max_examples=40, deadline=None)
def test_io_round_trip(graph):
    buffer = io.StringIO()
    write_edge_list(graph, buffer)
    buffer.seek(0)
    assert read_edge_list(buffer) == graph


@given(random_graphs(), st.data())
@settings(max_examples=60, deadline=None)
def test_induced_subgraph_preserves_kept_edges(graph, data):
    keep = np.array(
        data.draw(
            st.lists(st.booleans(), min_size=graph.n, max_size=graph.n)
        )
    )
    sub, kept_ids = graph.induced_subgraph(keep)
    assert sub.n == int(keep.sum())
    # Every surviving edge maps to an original edge between kept nodes.
    for u, v, _p in sub.edges():
        assert graph.has_edge(int(kept_ids[u]), int(kept_ids[v]))
    # Edge count equals original edges with both endpoints kept.
    src, dst, _ = graph.edge_arrays()
    expected = int((keep[src] & keep[dst]).sum())
    assert sub.m == expected


@given(random_graphs(), st.data())
@settings(max_examples=50, deadline=None)
def test_gather_csr_rows_matches_slices(graph, data):
    nodes = data.draw(
        st.lists(st.integers(0, graph.n - 1), min_size=0, max_size=6)
    )
    indptr, targets, _ = graph.out_csr
    positions = gather_csr_rows(indptr, np.asarray(nodes, dtype=np.int64))
    expected = np.concatenate(
        [targets[indptr[v] : indptr[v + 1]] for v in nodes]
    ) if nodes else np.empty(0, dtype=np.int64)
    assert np.array_equal(targets[positions], expected)


@given(random_graphs())
@settings(max_examples=40, deadline=None)
def test_reachability_is_monotone_in_sources(graph):
    single = nodes_reachable_from(graph, [0])
    double = nodes_reachable_from(graph, [0, graph.n - 1])
    assert (double | single).tolist() == double.tolist()  # superset


@given(random_graphs(), st.data())
@settings(max_examples=50, deadline=None)
def test_residual_shrink_conserves_nodes(graph, data):
    eta = data.draw(st.integers(1, graph.n))
    residual = initial_residual(graph, eta)
    activated = data.draw(
        st.lists(st.integers(0, graph.n - 1), min_size=1, max_size=graph.n, unique=True)
    )
    shrunk = shrink_residual(residual, activated)
    assert shrunk.n == graph.n - len(activated)
    assert shrunk.shortfall == max(0, eta - len(activated))
    # Original ids are sorted and disjoint from the activated set.
    ids = shrunk.original_ids.tolist()
    assert ids == sorted(ids)
    assert not set(ids) & set(activated)
