"""Property-based tests for the coverage index and greedy max coverage."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sampling.coverage import CoverageIndex


@st.composite
def set_batches(draw, max_nodes=10, max_sets=12):
    """Raw ``(n, sets)`` instances for add-vs-add_batch comparisons."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    sets = draw(
        st.lists(
            st.lists(st.integers(0, n - 1), min_size=1, max_size=n, unique=True),
            min_size=1,
            max_size=max_sets,
        )
    )
    return n, sets


@st.composite
def coverage_instances(draw, max_nodes=10, max_sets=12):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    sets = draw(
        st.lists(
            st.lists(st.integers(0, n - 1), min_size=1, max_size=n, unique=True),
            min_size=1,
            max_size=max_sets,
        )
    )
    index = CoverageIndex(n)
    for members in sets:
        index.add(np.asarray(members, dtype=np.int64))
    return index


@given(coverage_instances())
@settings(max_examples=80, deadline=None)
def test_counts_consistent_with_sets(index):
    for v in range(index.n):
        manual = sum(1 for s in index.sets if v in s)
        assert index.coverage_of(v) == manual


@given(coverage_instances())
@settings(max_examples=80, deadline=None)
def test_argmax_is_maximal(index):
    node, coverage = index.argmax_node()
    assert coverage == max(index.coverage_of(v) for v in range(index.n))
    assert index.coverage_of(node) == coverage


@given(coverage_instances(), st.data())
@settings(max_examples=80, deadline=None)
def test_set_coverage_bounds(index, data):
    nodes = data.draw(
        st.lists(st.integers(0, index.n - 1), min_size=1, max_size=4, unique=True)
    )
    union = index.coverage_of_set(nodes)
    best_single = max(index.coverage_of(v) for v in nodes)
    total = sum(index.coverage_of(v) for v in nodes)
    assert best_single <= union <= min(total, len(index))


@given(coverage_instances(), st.data())
@settings(max_examples=60, deadline=None)
def test_greedy_matches_its_own_coverage(index, data):
    budget = data.draw(st.integers(1, index.n))
    result = index.greedy_max_coverage(budget)
    assert result.covered == index.coverage_of_set(result.nodes)
    assert sum(result.marginal_gains) == result.covered


@given(coverage_instances(), st.data())
@settings(max_examples=60, deadline=None)
def test_greedy_guarantee_against_bruteforce(index, data):
    """Coverage >= (1 - (1 - 1/b)^b) * OPT_b, checked by brute force."""
    import itertools

    budget = data.draw(st.integers(1, min(3, index.n)))
    greedy = index.greedy_max_coverage(budget).covered
    best = 0
    for combo in itertools.combinations(range(index.n), budget):
        best = max(best, index.coverage_of_set(list(combo)))
    rho = 1.0 - (1.0 - 1.0 / budget) ** budget
    assert greedy >= rho * best - 1e-9


@given(coverage_instances())
@settings(max_examples=60, deadline=None)
def test_greedy_first_pick_is_argmax(index):
    result = index.greedy_max_coverage(1)
    _, best = index.argmax_node()
    assert result.covered == best


def _as_csr(sets):
    members = np.concatenate([np.asarray(s, dtype=np.int64) for s in sets])
    indptr = np.zeros(len(sets) + 1, dtype=np.int64)
    np.cumsum([len(s) for s in sets], out=indptr[1:])
    return members, indptr


@given(set_batches())
@settings(max_examples=80, deadline=None)
def test_add_batch_equals_repeated_add(raw):
    """One packed add_batch must be indistinguishable from N adds."""
    n, sets = raw
    one_by_one = CoverageIndex(n)
    for s in sets:
        one_by_one.add(np.asarray(s, dtype=np.int64))
    batched = CoverageIndex(n)
    members, indptr = _as_csr(sets)
    batched.add_batch(members, indptr)

    assert len(batched) == len(one_by_one)
    assert batched.total_size() == one_by_one.total_size()
    assert np.array_equal(batched.coverage_counts(), one_by_one.coverage_counts())
    for a, b in zip(batched.sets, one_by_one.sets):
        assert np.array_equal(a, b)


@given(set_batches(), st.data())
@settings(max_examples=60, deadline=None)
def test_add_batch_greedy_cover_unchanged(raw, data):
    """Greedy max-cover must not depend on how the pool was packed."""
    n, sets = raw
    one_by_one = CoverageIndex(n)
    for s in sets:
        one_by_one.add(np.asarray(s, dtype=np.int64))
    batched = CoverageIndex(n)
    # Split the batch at an arbitrary point to exercise buffer growth.
    split = data.draw(st.integers(0, len(sets)))
    for part in (sets[:split], sets[split:]):
        if part:
            batched.add_batch(*_as_csr(part))

    budget = data.draw(st.integers(1, n))
    a = one_by_one.greedy_max_coverage(budget)
    b = batched.greedy_max_coverage(budget)
    assert a.nodes == b.nodes
    assert a.covered == b.covered
    assert a.marginal_gains == b.marginal_gains


@given(set_batches())
@settings(max_examples=40, deadline=None)
def test_packed_layout_roundtrip(raw):
    """`packed()` exposes exactly the sets that went in, in order."""
    n, sets = raw
    index = CoverageIndex(n)
    index.add_batch(*_as_csr(sets))
    members, indptr = index.packed()
    assert len(indptr) == len(sets) + 1
    for i, s in enumerate(sets):
        assert np.array_equal(members[indptr[i] : indptr[i + 1]], np.asarray(s))
