"""Property-based tests pinning the mRR estimator to Theorem 3.3.

These sample small random graphs, compute the *exact* expected truncated
spread by enumeration, and check the sampled mRR estimate lands inside the
paper's bias bracket ``[(1 - 1/e) * truth, truth]`` (with sampling slack).
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.diffusion.exact import exact_expected_truncated_spread
from repro.diffusion.ic import IndependentCascade
from repro.graph.digraph import DiGraph
from repro.sampling.mrr import MRRCollection, RootCountRule, estimate_truncated_spread_mrr

ONE_MINUS_INV_E = 1.0 - 1.0 / np.e
MODEL = IndependentCascade()


@st.composite
def small_probabilistic_graphs(draw):
    """Graphs small enough for exact IC enumeration (m <= 10)."""
    n = draw(st.integers(min_value=2, max_value=6))
    pair = st.tuples(
        st.integers(0, n - 1), st.integers(0, n - 1)
    ).filter(lambda t: t[0] != t[1])
    pairs = draw(st.lists(pair, max_size=10, unique=True))
    probs = draw(
        st.lists(
            st.sampled_from([0.25, 0.5, 0.75, 1.0]),
            min_size=len(pairs),
            max_size=len(pairs),
        )
    )
    return DiGraph.from_edges(n, [(u, v, p) for (u, v), p in zip(pairs, probs)])


@given(small_probabilistic_graphs(), st.data())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_theorem_3_3_bracket(graph, data):
    eta = data.draw(st.integers(1, graph.n))
    seed_node = data.draw(st.integers(0, graph.n - 1))
    truth = exact_expected_truncated_spread(graph, MODEL, [seed_node], eta)
    estimate = estimate_truncated_spread_mrr(
        graph, MODEL, [seed_node], eta, theta=4000, seed=0
    )
    # truth >= 1 always (the seed counts itself), so relative slack is safe.
    assert estimate <= truth * 1.12
    assert estimate >= ONE_MINUS_INV_E * truth * 0.88


@given(small_probabilistic_graphs(), st.data())
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_estimator_monotone_in_seed_set(graph, data):
    """Adding seeds can only increase the coverage-based estimate."""
    eta = data.draw(st.integers(1, graph.n))
    pool = MRRCollection(graph, MODEL, eta, seed=1)
    pool.grow_to(500)
    seeds = data.draw(
        st.lists(st.integers(0, graph.n - 1), min_size=1, max_size=2, unique=True)
    )
    extra = data.draw(st.integers(0, graph.n - 1))
    small = pool.estimated_truncated_spread(seeds)
    large = pool.estimated_truncated_spread(sorted(set(seeds) | {extra}))
    assert large >= small - 1e-12


@given(st.integers(2, 50), st.data())
@settings(max_examples=40, deadline=None)
def test_root_count_rule_expectation(n, data):
    eta = data.draw(st.integers(1, n))
    rule = RootCountRule.for_target(n, eta)
    assert rule.expectation == n / eta
    rng = np.random.default_rng(0)
    draws = [rule.draw(rng) for _ in range(400)]
    assert all(1 <= k <= n for k in draws)
    if rule.fraction == 0:
        assert len(set(draws)) == 1
