"""Property tests tying the three views of each diffusion model together.

For both IC and LT, the library exposes three computations that must agree
in distribution:

1. direct forward simulation (``model.simulate``),
2. sampling a live-edge realization and walking it,
3. exact enumeration of the realization space.

These tests check pairwise statistical agreement on small random graphs —
the kind of cross-validation that catches subtle sampling bugs (wrong
direction, double coin flips, missing randomized rounding) that unit tests
on fixed graphs can miss.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.diffusion.exact import exact_expected_spread
from repro.diffusion.ic import IndependentCascade
from repro.diffusion.lt import LinearThreshold
from repro.graph.digraph import DiGraph
from repro.graph.weighting import normalize_for_lt

TRIALS = 800
TOLERANCE = 0.25  # absolute, on expected spreads of a few nodes


@st.composite
def tiny_graphs(draw):
    """Graphs small enough for exact IC enumeration (m <= 9)."""
    n = draw(st.integers(min_value=2, max_value=5))
    pair = st.tuples(
        st.integers(0, n - 1), st.integers(0, n - 1)
    ).filter(lambda t: t[0] != t[1])
    pairs = draw(st.lists(pair, max_size=9, unique=True))
    probs = draw(
        st.lists(
            st.sampled_from([0.25, 0.5, 1.0]),
            min_size=len(pairs),
            max_size=len(pairs),
        )
    )
    return DiGraph.from_edges(n, [(u, v, p) for (u, v), p in zip(pairs, probs)])


@given(tiny_graphs(), st.data())
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_ic_simulation_matches_exact(graph, data):
    model = IndependentCascade()
    seed_node = data.draw(st.integers(0, graph.n - 1))
    truth = exact_expected_spread(graph, model, [seed_node])
    rng = np.random.default_rng(0)
    simulated = np.mean(
        [model.simulate(graph, [seed_node], rng).sum() for _ in range(TRIALS)]
    )
    assert abs(simulated - truth) < TOLERANCE


@given(tiny_graphs(), st.data())
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_ic_realization_walk_matches_simulation(graph, data):
    model = IndependentCascade()
    seed_node = data.draw(st.integers(0, graph.n - 1))
    rng = np.random.default_rng(1)
    via_realization = np.mean(
        [
            model.sample_realization(graph, rng).spread([seed_node])
            for _ in range(TRIALS)
        ]
    )
    via_simulation = np.mean(
        [model.simulate(graph, [seed_node], rng).sum() for _ in range(TRIALS)]
    )
    assert abs(via_realization - via_simulation) < TOLERANCE


@given(tiny_graphs(), st.data())
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_lt_live_edge_equivalence(graph, data):
    """Kempe et al.'s theorem: LT == its live-edge process, in distribution."""
    graph = normalize_for_lt(graph)
    model = LinearThreshold()
    seed_node = data.draw(st.integers(0, graph.n - 1))
    rng = np.random.default_rng(2)
    via_threshold = np.mean(
        [model.simulate(graph, [seed_node], rng).sum() for _ in range(TRIALS)]
    )
    via_live_edge = np.mean(
        [
            model.sample_realization(graph, rng).spread([seed_node])
            for _ in range(TRIALS)
        ]
    )
    assert abs(via_threshold - via_live_edge) < TOLERANCE


@given(tiny_graphs(), st.data())
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_rr_sets_unbiased_for_spread(graph, data):
    """Borgs et al.: E[I(S)] = n * Pr[R hits S], against exact enumeration."""
    from repro.sampling.rr import RRCollection

    model = IndependentCascade()
    seed_node = data.draw(st.integers(0, graph.n - 1))
    truth = exact_expected_spread(graph, model, [seed_node])
    pool = RRCollection(graph, model, seed=3)
    pool.grow_to(4000)
    estimate = pool.estimated_node_spread(seed_node)
    assert abs(estimate - truth) < max(TOLERANCE, 0.12 * truth)
