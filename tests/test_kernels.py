"""Tests for the labeled-BFS kernel backend registry (``repro.kernels``).

Three contracts:

* **resolution** — ``"auto"`` silently falls back to numpy when numba is
  missing or the graph is too small, pinned ``"numba"`` fails loudly
  naming the missing extra, and every resolution is tallied;
* **bit-identity** — the kernel path (exercised through the interpreted
  ``"python"`` backend, and through ``"numba"`` where available) produces
  byte-for-byte the same pools, cascades, replays, CRN matrices, and
  adaptive seed sets as the vectorized numpy closures, for any worker
  count;
* **diagnostics** — ``ExecutionContext.note_kernels`` snapshots what the
  dispatch layer actually did.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

import repro.kernels as kernels
from repro.core.asti import ASTI
from repro.diffusion.ic import IndependentCascade
from repro.diffusion.lt import LinearThreshold
from repro.diffusion.montecarlo import CRNSpreadEvaluator
from repro.diffusion.realization import batch_reachable_from
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import sample_shared_realizations
from repro.graph import generators, weighting
from repro.kernels import (
    AUTO_MIN_EDGES,
    KERNEL_BACKENDS,
    numba_available,
    reset_stats,
    resolve_backend,
    snapshot_stats,
)
from repro.kernels.reference import KERNEL_NAMES
from repro.runtime.context import ExecutionContext


@pytest.fixture(params=["IC", "LT"])
def model(request):
    return IndependentCascade() if request.param == "IC" else LinearThreshold()


@pytest.fixture
def graph():
    """A hub-heavy ~200-node graph above the auto-dispatch edge floor."""
    topology = generators.preferential_attachment(200, 3, seed=3, directed=False)
    graph = weighting.weighted_cascade(topology)
    assert graph.m >= AUTO_MIN_EDGES  # keeps the "auto" tests honest
    return graph


@pytest.fixture
def no_numba(monkeypatch):
    """Simulate a machine where importing numba fails."""
    monkeypatch.setattr(
        kernels, "_NUMBA_CACHE", (None, "ImportError: No module named 'numba'")
    )


@pytest.fixture
def fake_numba(monkeypatch):
    """Pretend numba imported fine (the interpreted kernels stand in)."""
    from repro.kernels import reference

    monkeypatch.setattr(kernels, "_NUMBA_CACHE", (reference, None))


class _GraphStub:
    def __init__(self, m):
        self.m = m


# ----------------------------------------------------------------------
# Registry and resolution
# ----------------------------------------------------------------------

class TestResolution:
    def test_knob_values_pinned(self):
        assert KERNEL_BACKENDS == ("auto", "numpy", "numba", "python")

    def test_numpy_keeps_the_closures(self):
        backend = resolve_backend("numpy")
        assert backend.name == "numpy"
        assert backend.kernels is None and not backend.compiled

    def test_python_backend_exposes_every_kernel(self):
        backend = resolve_backend("python")
        assert backend.name == "python" and not backend.compiled
        for kernel_name in KERNEL_NAMES:
            assert callable(getattr(backend.kernels, kernel_name))

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="kernel_backend"):
            resolve_backend("cuda")

    def test_auto_without_numba_is_silently_numpy(self, no_numba, recwarn):
        backend = resolve_backend("auto", _GraphStub(m=10_000))
        assert backend.name == "numpy"
        assert len(recwarn) == 0  # graceful degradation, no noise

    def test_pinned_numba_without_numba_raises_naming_extra(self, no_numba):
        with pytest.raises(ConfigurationError) as excinfo:
            resolve_backend("numba")
        message = str(excinfo.value)
        assert "pip install .[numba]" in message
        assert "No module named 'numba'" in message

    def test_auto_respects_the_edge_floor(self, fake_numba):
        assert resolve_backend("auto", _GraphStub(AUTO_MIN_EDGES - 1)).name == "numpy"
        assert resolve_backend("auto", _GraphStub(AUTO_MIN_EDGES)).name == "numba"
        assert resolve_backend("auto").name == "numba"  # no graph: trust the pin

    def test_resolutions_are_tallied(self):
        reset_stats()
        resolve_backend("numpy")
        resolve_backend("python")
        resolve_backend("python")
        assert snapshot_stats()["resolved"] == {"numpy": 1, "python": 2}

    def test_real_numba_probe_matches_import(self):
        try:
            import numba  # noqa: F401
            importable = True
        except ImportError:
            importable = False
        assert numba_available() == importable


class TestKnobValidation:
    def test_context_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError, match="kernel_backend"):
            ExecutionContext(kernel_backend="bogus")

    def test_config_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError, match="kernel_backend"):
            ExperimentConfig(dataset="nethept-sim", kernel_backend="bogus")

    def test_config_flows_into_context(self):
        config = ExperimentConfig(dataset="nethept-sim", kernel_backend="numpy")
        assert config.to_context().kernel_backend == "numpy"

    def test_context_pickles_with_backend(self):
        # Worker processes must inherit the knob (tasks pass it explicitly,
        # but the pickled context is the fallback contract).
        context = ExecutionContext(kernel_backend="python")
        assert pickle.loads(pickle.dumps(context)).kernel_backend == "python"

    def test_cli_flag_reaches_the_context(self):
        from repro.cli import _context_from_args, build_parser

        args = build_parser().parse_args(
            ["solve", "--dataset", "nethept-sim", "--eta", "5",
             "--kernel-backend", "numpy"]
        )
        assert _context_from_args(args).kernel_backend == "numpy"

    def test_cli_rejects_unknown_backend(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["solve", "--dataset", "nethept-sim", "--eta", "5",
                 "--kernel-backend", "cuda"]
            )


class TestDiagnostics:
    def test_note_kernels_snapshots_dispatch_activity(self, graph):
        reset_stats()
        model = IndependentCascade()
        model.simulate_batch(graph, [0], 8, seed=1, kernel="python")
        with ExecutionContext(kernel_backend="python") as context:
            context.note_kernels()
            diag = context.diagnostics
        assert diag["kernel_backend"] == "python"
        assert diag["kernel_numba_available"] == numba_available()
        assert diag["kernel_calls"].get("ic_forward", 0) >= 1
        assert diag["kernel_backends_resolved"].get("python", 0) >= 1
        assert diag["kernel_jit_seconds"] >= 0.0

    def test_sweep_records_kernel_diagnostics(self):
        # The harness calls note_kernels at the end of every sweep; probe
        # through the public run_sweep path at quick scale.
        from repro.experiments.config import quick_config
        from repro.experiments.harness import run_sweep

        reset_stats()
        config = quick_config(
            graph_n=80, realizations=2, algorithms=("ASTI",),
            eta_fractions=(0.1,), max_samples=2000,
        )
        run_sweep(config)  # note_kernels must not raise mid-sweep
        assert snapshot_stats()["resolved"]  # engines resolved backends


# ----------------------------------------------------------------------
# Bit-identity: the kernel path against the numpy closures
# ----------------------------------------------------------------------

def _assert_packed_equal(a, b):
    assert np.array_equal(a[0], b[0])
    assert np.array_equal(a[1], b[1])


class TestBitIdentity:
    def test_simulate_batch(self, model, graph):
        base = model.simulate_batch(graph, [0, 5], 50, seed=11, kernel="numpy")
        _assert_packed_equal(
            base, model.simulate_batch(graph, [0, 5], 50, seed=11, kernel="python")
        )

    def test_reverse_sample_batch(self, model, graph):
        roots = np.random.default_rng(2).integers(0, graph.n, 150, dtype=np.int64)
        roots_indptr = np.arange(151, dtype=np.int64)
        base = model.reverse_sample_batch(
            graph, roots, roots_indptr, np.random.default_rng(7), kernel="numpy"
        )
        _assert_packed_equal(
            base,
            model.reverse_sample_batch(
                graph, roots, roots_indptr, np.random.default_rng(7),
                kernel="python",
            ),
        )

    @pytest.mark.parametrize("masked", [False, True])
    def test_batch_reachable_from(self, model, graph, masked):
        realizations = sample_shared_realizations(graph, model, 6, seed=4)
        seeds_per = [[i, (i * 7) % graph.n] for i in range(6)]
        allowed = None
        if masked:
            allowed = np.random.default_rng(9).random((6, graph.n)) < 0.8
            for i in range(6):
                allowed[i, seeds_per[i]] = True
        base = batch_reachable_from(
            realizations, seeds_per, allowed=allowed, kernel="numpy"
        )
        again = batch_reachable_from(
            realizations, seeds_per, allowed=allowed, kernel="python"
        )
        assert np.array_equal(base, again)

    def test_crn_spread_matrix(self, model, graph):
        sets = [[0], [0, 3], [1, 4, 9]]
        matrices = {}
        for name in ("numpy", "python"):
            with ExecutionContext(kernel_backend=name) as context:
                evaluator = CRNSpreadEvaluator(
                    graph, model, n_sims=25, seed=6, context=context
                )
                matrices[name] = evaluator.spread_matrix(sets)
        assert np.array_equal(matrices["numpy"], matrices["python"])

    def test_crn_spread_matrix_with_workers(self, graph):
        # (backend, jobs) grid: every combination bit-identical.
        model = IndependentCascade()
        sets = [[0], [2, 8]]
        expected = None
        for name in ("numpy", "python"):
            for jobs in (None, 2):
                with ExecutionContext(kernel_backend=name, jobs=jobs) as context:
                    evaluator = CRNSpreadEvaluator(
                        graph, model, n_sims=20, seed=13, context=context
                    )
                    matrix = evaluator.spread_matrix(sets)
                if expected is None:
                    expected = matrix
                assert np.array_equal(expected, matrix), (name, jobs)

    def test_adaptive_seed_sets(self, model, graph):
        realizations = sample_shared_realizations(graph, model, 2, seed=21)
        outcomes = {}
        for name in ("numpy", "python"):
            with ExecutionContext(kernel_backend=name) as context:
                results = ASTI(model, max_samples=4000, context=context).run_batch(
                    graph, 30, realizations, seeds=5
                )
            outcomes[name] = [
                (result.seeds, result.spread) for result in results
            ]
        assert outcomes["numpy"] == outcomes["python"]

    def test_adaptive_seed_sets_with_workers(self, graph):
        model = LinearThreshold()
        realizations = sample_shared_realizations(graph, model, 2, seed=22)
        outcomes = {}
        for name, jobs in (("numpy", None), ("python", 2)):
            with ExecutionContext(kernel_backend=name, jobs=jobs) as context:
                results = ASTI(model, max_samples=4000, context=context).run_batch(
                    graph, 25, realizations, seeds=8
                )
            outcomes[name] = [
                (result.seeds, result.spread) for result in results
            ]
        assert outcomes["numpy"] == outcomes["python"]


@pytest.mark.skipif(not numba_available(), reason="numba not installed")
class TestCompiledBitIdentity:
    """The same identity contract against the actually-compiled kernels."""

    def test_simulate_batch(self, model, graph):
        base = model.simulate_batch(graph, [0, 5], 50, seed=11, kernel="numpy")
        _assert_packed_equal(
            base, model.simulate_batch(graph, [0, 5], 50, seed=11, kernel="numba")
        )

    def test_reverse_sample_batch(self, model, graph):
        roots = np.random.default_rng(2).integers(0, graph.n, 150, dtype=np.int64)
        roots_indptr = np.arange(151, dtype=np.int64)
        base = model.reverse_sample_batch(
            graph, roots, roots_indptr, np.random.default_rng(7), kernel="numpy"
        )
        _assert_packed_equal(
            base,
            model.reverse_sample_batch(
                graph, roots, roots_indptr, np.random.default_rng(7),
                kernel="numba",
            ),
        )

    def test_batch_reachable_from(self, model, graph):
        realizations = sample_shared_realizations(graph, model, 4, seed=4)
        seeds_per = [[i] for i in range(4)]
        base = batch_reachable_from(realizations, seeds_per, kernel="numpy")
        assert np.array_equal(
            base, batch_reachable_from(realizations, seeds_per, kernel="numba")
        )

    def test_jit_time_is_attributed(self, graph):
        reset_stats()
        IndependentCascade().simulate_batch(graph, [0], 8, seed=1, kernel="numba")
        stats = snapshot_stats()
        assert stats["calls"].get("ic_forward", 0) >= 1
