"""Tests for the shared-memory parallel runtime.

Three concerns:

* unit behavior: jobs validation, shared-memory round-trips of graphs and
  realization batches, runtime lifecycle;
* **worker-count invariance** (the load-bearing determinism contract):
  (m)RR pools, CRN spread estimates, adaptive-run seed counts, and harness
  outcomes must be bit-identical between ``jobs=1`` (in-process chunks)
  and any multi-worker run under a fixed seed;
* end-to-end knobs: ``ExperimentConfig.jobs``, ``ASTI(jobs=...)``, and the
  CLI ``--jobs`` flags reject non-positive values with a clean error.
"""

import numpy as np
import pytest

from repro.baselines.celf import CELFMinimizer
from repro.core.asti import ASTI
from repro.diffusion.ic import IndependentCascade
from repro.diffusion.lt import LinearThreshold
from repro.diffusion.montecarlo import CRNSpreadEvaluator, estimate_spreads_many
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig, quick_config
from repro.experiments.harness import run_eta_point, sample_shared_realizations
from repro.graph import generators, weighting
from repro.parallel import ParallelRuntime
from repro.parallel.shm import (
    graph_from_handle,
    realizations_from_handle,
    realizations_shareable,
    share_graph,
    share_realizations,
)
from repro.sampling.coverage import CoverageIndex
from repro.sampling.engine import mrr_batch_sampler, rr_batch_sampler
from repro.sampling.mrr import RootCountRule, estimate_truncated_spread_mrr


@pytest.fixture(scope="module")
def bench_graph():
    topology = generators.preferential_attachment(220, 3, seed=11, directed=False)
    return weighting.weighted_cascade(topology)


def _mrr_pool(graph, jobs, seed=42, sets=300, batch_size=64):
    rule = RootCountRule.for_target(graph.n, max(1, graph.n // 10))
    with ParallelRuntime(jobs) as runtime:
        engine = mrr_batch_sampler(
            graph,
            IndependentCascade(),
            rule,
            seed=seed,
            batch_size=batch_size,
            runtime=runtime,
        )
        index = CoverageIndex(graph.n)
        counts_a = engine.fill(index, sets // 2)       # sliced fills must not
        counts_b = engine.grow_to(index, sets)         # shift chunk seeding
        members, indptr = index.packed()
        return (
            members.copy(),
            indptr.copy(),
            np.concatenate([counts_a, counts_b]),
        )


class TestRuntimeBasics:
    @pytest.mark.parametrize("jobs", [0, -1])
    def test_nonpositive_jobs_rejected(self, jobs):
        with pytest.raises(ConfigurationError):
            ParallelRuntime(jobs)

    def test_jobs_one_never_spawns(self, bench_graph):
        runtime = ParallelRuntime(1)
        assert not runtime.parallel
        assert runtime._state["executor"] is None
        engine = rr_batch_sampler(
            bench_graph, IndependentCascade(), seed=1, runtime=runtime
        )
        engine.fill(CoverageIndex(bench_graph.n), 50)
        assert runtime._state["executor"] is None  # chunks ran in-process
        runtime.close()

    def test_close_is_idempotent_and_blocks_dispatch(self):
        runtime = ParallelRuntime(2)
        runtime.close()
        runtime.close()
        with pytest.raises(ConfigurationError):
            runtime._executor()

    def test_publish_after_close_raises_cleanly(self, bench_graph):
        runtime = ParallelRuntime(1)
        realizations = sample_shared_realizations(
            bench_graph, IndependentCascade(), 2, seed=1
        )
        runtime.close()
        with pytest.raises(ConfigurationError, match="closed"):
            runtime.publish_graph(bench_graph)
        with pytest.raises(ConfigurationError, match="closed"):
            runtime.publish_realizations(realizations)
        with pytest.raises(ConfigurationError, match="closed"):
            runtime.publish_arrays({"x": np.zeros(4)})

    def test_publish_realizations_cached_per_batch(self, bench_graph):
        realizations = sample_shared_realizations(
            bench_graph, IndependentCascade(), 3, seed=2
        )
        with ParallelRuntime(1) as runtime:
            first = runtime.publish_realizations(realizations)
            second = runtime.publish_realizations(realizations)
            assert first is second
            assert len(runtime._state["bundles"]) == 1

    def test_context_manager(self, bench_graph):
        with ParallelRuntime(1) as runtime:
            handle = runtime.publish_graph(bench_graph)
            assert handle.n == bench_graph.n


class TestSharedMemoryRoundTrips:
    def test_graph_round_trip(self, bench_graph):
        bundle, handle = share_graph(bench_graph)
        try:
            rebuilt = graph_from_handle(handle)
            assert rebuilt == bench_graph
            assert rebuilt.m == bench_graph.m
        finally:
            bundle.close()

    @pytest.mark.parametrize("model_fixture", ["ic_model", "lt_model"])
    def test_realizations_round_trip(self, bench_graph, model_fixture, request):
        model = request.getfixturevalue(model_fixture)
        realizations = sample_shared_realizations(bench_graph, model, 4, seed=3)
        assert realizations_shareable(realizations)
        bundle, handle = share_realizations(realizations)
        try:
            rebuilt = realizations_from_handle(bench_graph, handle, [0, 2])
            for phi, index in zip(rebuilt, [0, 2]):
                assert phi.spread([0, 1, 5]) == realizations[index].spread([0, 1, 5])
        finally:
            bundle.close()

    def test_mixed_realizations_not_shareable(self, bench_graph):
        ic = IndependentCascade().sample_realization(bench_graph, 0)
        lt = LinearThreshold().sample_realization(bench_graph, 0)
        assert not realizations_shareable([ic, lt])
        assert not realizations_shareable([])

    def test_publish_graph_cached_per_object(self, bench_graph):
        with ParallelRuntime(1) as runtime:
            first = runtime.publish_graph(bench_graph)
            second = runtime.publish_graph(bench_graph)
            assert first is second


class TestWorkerCountInvariance:
    """jobs=1 vs jobs=N bit-identity under a fixed seed."""

    def test_mrr_pools_bit_identical(self, bench_graph):
        members1, indptr1, counts1 = _mrr_pool(bench_graph, jobs=1)
        members4, indptr4, counts4 = _mrr_pool(bench_graph, jobs=4)
        assert np.array_equal(members1, members4)
        assert np.array_equal(indptr1, indptr4)
        assert np.array_equal(counts1, counts4)

    def test_rr_pools_bit_identical(self, bench_graph):
        def pool(jobs):
            with ParallelRuntime(jobs) as runtime:
                engine = rr_batch_sampler(
                    bench_graph,
                    LinearThreshold(),
                    seed=7,
                    batch_size=50,
                    runtime=runtime,
                )
                index = CoverageIndex(bench_graph.n)
                engine.fill(index, 180)
                members, indptr = index.packed()
                return members.copy(), indptr.copy()

        members1, indptr1 = pool(1)
        members2, indptr2 = pool(2)
        assert np.array_equal(members1, members2)
        assert np.array_equal(indptr1, indptr2)

    @pytest.mark.parametrize("model_fixture", ["ic_model", "lt_model"])
    def test_crn_estimates_bit_identical(
        self, bench_graph, model_fixture, request
    ):
        model = request.getfixturevalue(model_fixture)
        candidates = [[v] for v in range(25)] + [[0, 3, 9]]
        kwargs = dict(n_sims=30, seed=5, mc_batch_size=16)
        legacy = estimate_spreads_many(bench_graph, model, candidates, **kwargs)
        with ParallelRuntime(1) as rt1:
            inproc = estimate_spreads_many(
                bench_graph, model, candidates, runtime=rt1, **kwargs
            )
        with ParallelRuntime(3) as rt3:
            sharded = estimate_spreads_many(
                bench_graph, model, candidates, runtime=rt3, **kwargs
            )
        # CRN evaluation replays pre-sampled noise, so even the legacy
        # runtime-free path must agree exactly.
        assert np.array_equal(legacy, inproc)
        assert np.array_equal(inproc, sharded)

    def test_crn_truncated_estimates_bit_identical(self, bench_graph):
        candidates = [[v] for v in range(10)]
        with ParallelRuntime(2) as runtime:
            evaluator = CRNSpreadEvaluator(
                bench_graph,
                IndependentCascade(),
                n_sims=20,
                seed=8,
                mc_batch_size=8,
                runtime=runtime,
            )
            sharded = evaluator.evaluate_many(candidates, eta=15)
        reference = CRNSpreadEvaluator(
            bench_graph, IndependentCascade(), n_sims=20, seed=8, mc_batch_size=8
        ).evaluate_many(candidates, eta=15)
        assert np.array_equal(reference, sharded)

    def test_asti_jobs_invariant_run(self, bench_graph):
        def solve(jobs):
            with ASTI(
                IndependentCascade(), max_samples=4000, jobs=jobs
            ) as algorithm:
                return algorithm.run(bench_graph, eta=20, seed=9)

        first = solve(1)
        second = solve(2)
        assert first.seeds == second.seeds
        assert first.spread == second.spread
        assert [r.samples_generated for r in first.rounds] == [
            r.samples_generated for r in second.rounds
        ]

    def test_estimate_mrr_jobs_invariant(self, bench_graph):
        kwargs = dict(eta=20, theta=400, seed=3, batch_size=64)
        one = estimate_truncated_spread_mrr(
            bench_graph, IndependentCascade(), [0, 1], jobs=1, **kwargs
        )
        two = estimate_truncated_spread_mrr(
            bench_graph, IndependentCascade(), [0, 1], jobs=2, **kwargs
        )
        assert one == two


class TestHarnessInvariance:
    @pytest.mark.parametrize("model_fixture", ["ic_model", "lt_model"])
    def test_eta_point_bit_identical(self, bench_graph, model_fixture, request):
        model = request.getfixturevalue(model_fixture)
        realizations = sample_shared_realizations(bench_graph, model, 3, seed=13)
        labels = ("ASTI", "ATEUC", "CELF")

        def outcomes(runtime):
            return run_eta_point(
                bench_graph,
                model,
                eta=15,
                algorithms=labels,
                realizations=realizations,
                max_samples=4000,
                seed=2,
                runtime=runtime,
            )

        base = outcomes(None)
        with ParallelRuntime(2) as runtime:
            sharded = outcomes(runtime)
        for label in labels:
            reference = [
                (r.seed_count, r.spread, r.achieved, r.marginal_spreads)
                for r in base[label].runs
            ]
            parallel = [
                (r.seed_count, r.spread, r.achieved, r.marginal_spreads)
                for r in sharded[label].runs
            ]
            assert reference == parallel, label

    def test_config_jobs_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(dataset="nethept-sim", jobs=0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(dataset="nethept-sim", jobs=-2)
        assert quick_config().scaled(jobs=2).jobs == 2

    def test_celf_minimizer_owns_runtime_from_jobs(self, bench_graph):
        with CELFMinimizer(IndependentCascade(), samples=10, jobs=1) as minimizer:
            assert minimizer.runtime is not None
            assert not minimizer.runtime.parallel
            result = minimizer.run(bench_graph, eta=10, seed=4)
        assert minimizer.runtime is None  # owned runtime released on close
        reference = CELFMinimizer(IndependentCascade(), samples=10).run(
            bench_graph, eta=10, seed=4
        )
        assert result.seeds == reference.seeds

    def test_celf_minimizer_leaves_shared_runtime_open(self, bench_graph):
        with ParallelRuntime(1) as runtime:
            minimizer = CELFMinimizer(
                IndependentCascade(), samples=10, runtime=runtime
            )
            minimizer.close()  # not the owner: must leave the runtime alone
            assert minimizer.runtime is runtime
            runtime.publish_graph(bench_graph)  # still usable


class TestLifecycleEdges:
    def test_map_ordered_after_close_raises_on_every_route(self):
        # The jobs=1 branch used to skip the closed check and silently run
        # the chunks in-process; both routes must refuse identically.
        sequential = ParallelRuntime(1)
        sequential.close()
        with pytest.raises(ConfigurationError, match="closed"):
            sequential.map_ordered(len, [((1, 2),)])
        parallel = ParallelRuntime(2)
        parallel.close()
        with pytest.raises(ConfigurationError, match="closed"):
            parallel.map_ordered(len, [((1, 2),)])

    def test_double_close_after_dispatch_is_idempotent(self):
        from repro.testing.faults import echo_chunk

        runtime = ParallelRuntime(2)
        runtime.map_ordered(echo_chunk, [(0,)])  # pool actually spun up
        runtime.close()
        runtime.close()

    @pytest.mark.skipif(
        not __import__("os").path.isdir("/dev/shm"),
        reason="needs a POSIX shm filesystem",
    )
    def test_finalizer_unlinks_segments_at_gc(self, bench_graph):
        import gc
        import os

        runtime = ParallelRuntime(2)
        name = runtime.publish_graph(bench_graph).arrays.shm_name
        assert os.path.exists(os.path.join("/dev/shm", name))
        del runtime  # no close(): the weakref finalizer must clean up
        gc.collect()
        assert not os.path.exists(os.path.join("/dev/shm", name))

    def test_keyboard_interrupt_mid_dispatch_leaves_no_segments(
        self, bench_graph
    ):
        from repro.testing.faults import interrupt_chunk

        runtime = ParallelRuntime(2)
        runtime.publish_graph(bench_graph)
        bundle = next(iter(runtime._state["bundles"].values()))
        with pytest.raises(KeyboardInterrupt):
            runtime.map_ordered(interrupt_chunk, [(0,), (1,)])
        runtime.close()  # the interrupt handler's cleanup path
        assert not bundle.segment_exists()
        assert runtime._state["bundles"] == {}


class TestResourceRelease:
    def test_evaluator_close_releases_worlds_segment(self, bench_graph):
        candidates = [[v] for v in range(20)]
        with ParallelRuntime(2) as runtime:
            evaluator = CRNSpreadEvaluator(
                bench_graph,
                IndependentCascade(),
                n_sims=20,
                seed=6,
                mc_batch_size=8,
                runtime=runtime,
            )
            sharded = evaluator.evaluate_many(candidates)
            assert evaluator._worlds_handle is not None
            published = len(runtime._state["bundles"])
            evaluator.close()
            assert len(runtime._state["bundles"]) == published - 1
            evaluator.close()  # idempotent
            # A closed evaluator still evaluates — in-process — and must
            # agree exactly (the worlds live in the evaluator itself).
            assert np.array_equal(sharded, evaluator.evaluate_many(candidates))

    def test_celf_run_releases_worlds_each_selection(self, bench_graph):
        with ParallelRuntime(2) as runtime:
            minimizer = CELFMinimizer(
                IndependentCascade(), samples=20, mc_batch_size=8, runtime=runtime
            )
            graph_segments = len(runtime._state["bundles"])
            for _ in range(3):
                minimizer.run(bench_graph, eta=10, seed=4)
            # Only the cached graph segment may persist across runs; each
            # selection's worlds segment is released by _run_celf.
            assert len(runtime._state["bundles"]) <= graph_segments + 1
