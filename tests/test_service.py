"""Tests for the always-on seed-selection service.

Three layers: the wire protocol and cache in isolation (pure unit
tests), then end-to-end sessions against a real server on a background
thread (:class:`~repro.service.client.ServiceThread` — real sockets,
real admission control, real drain).  The load/chaos *scale* lives in
``benchmarks/bench_service_load.py``; here each robustness path gets one
deterministic exercise:

* responses are bit-identical to offline ``jobs=1`` library runs, warm
  or cold, corrupted cache or not, degraded or not;
* every failure is a typed reply on the open connection — malformed
  lines, infeasible targets, blown deadlines, shed load;
* drain delivers in-flight replies before the socket closes.
"""

from __future__ import annotations

import itertools
import json
import threading
import time

import pytest

from repro.core.asti import ASTI
from repro.diffusion.ic import IndependentCascade
from repro.errors import ConfigurationError, ServiceError
from repro.experiments import datasets
from repro.parallel.runtime import FaultPolicy
from repro.runtime.context import ExecutionContext
from repro.sampling.mrr import estimate_truncated_spread_mrr
from repro.service import (
    ERROR_CODES,
    ProtocolError,
    ServiceCache,
    ServiceConfig,
    ServiceThread,
    encode_reply,
    error_reply,
    ok_reply,
    parse_request,
)
from repro.service.handlers import build_plan
from repro.service.protocol import MAX_LINE_BYTES, Request
from repro.testing.faults import FaultInjection, ServiceFaultInjection

DATASET = "nethept-sim"
N = 160
ETA = 16
THETA = 400

ESTIMATE_PARAMS = {
    "dataset": DATASET, "n": N, "eta": ETA,
    "seeds": [0, 3, 7], "theta": THETA,
}


def estimate_request(request_id: str, seed: int = 7, **overrides):
    payload = {
        "op": "estimate", "id": request_id, "seed": seed,
        "params": dict(ESTIMATE_PARAMS),
    }
    payload.update(overrides)
    return payload


@pytest.fixture(scope="module")
def offline_estimate():
    """The cold offline jobs=1 reference every service reply must match."""
    graph = datasets.load_dataset(DATASET, n=N, seed=0)
    with ExecutionContext(jobs=1) as context:
        return estimate_truncated_spread_mrr(
            graph, IndependentCascade(), [0, 3, 7], ETA,
            theta=THETA, seed=7, context=context,
        )


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------


class TestProtocol:
    def test_round_trip(self):
        line = json.dumps({
            "op": "estimate", "id": "q1", "seed": 3,
            "deadline_ms": 250, "params": {"eta": 5},
        }).encode()
        request = parse_request(line)
        assert request == Request(
            op="estimate", id="q1", seed=3,
            deadline_ms=250.0, params={"eta": 5},
        )

    def test_defaults(self):
        request = parse_request(b'{"op": "health", "id": "h"}')
        assert request.seed == 0
        assert request.deadline_ms is None
        assert request.params == {}

    @pytest.mark.parametrize(
        "line",
        [
            b"not json",
            b"[1, 2]",
            b'{"op": "estimate"}',                      # no id
            b'{"op": "estimate", "id": ""}',           # empty id
            b'{"op": "estimate", "id": 4}',            # non-string id
            b'{"op": "launch", "id": "q"}',            # unknown op
            b'{"op": "solve", "id": "q", "seed": -1}',
            b'{"op": "solve", "id": "q", "seed": true}',
            b'{"op": "solve", "id": "q", "deadline_ms": -5}',
            b'{"op": "solve", "id": "q", "params": []}',
        ],
    )
    def test_invalid_lines_raise_protocol_error(self, line):
        with pytest.raises(ProtocolError):
            parse_request(line)

    def test_oversize_line_rejected_before_parsing(self):
        line = b'{"id": "' + b"x" * MAX_LINE_BYTES + b'"}'
        with pytest.raises(ProtocolError, match="exceeds"):
            parse_request(line)

    def test_error_reply_pins_the_code_table(self):
        for code in ERROR_CODES:
            assert error_reply("q", code, "msg")["error"]["code"] == code
        with pytest.raises(ValueError):
            error_reply("q", "made-up", "msg")

    def test_encode_reply_is_one_line(self):
        wire = encode_reply(ok_reply("q", "health", {"status": "ok"}, 1.25))
        assert wire.endswith(b"\n")
        assert wire.count(b"\n") == 1
        assert json.loads(wire)["ms"] == 1.25

    def test_build_plan_pool_key_excludes_queried_seeds(self):
        # The pool is independent of which seed set is evaluated against
        # it, so two requests differing only in 'seeds' share a cache key.
        a = build_plan(parse_request(encode_reply(estimate_request("a"))[:-1]))
        b = build_plan(parse_request(json.dumps(
            estimate_request("b", params=dict(ESTIMATE_PARAMS, seeds=[1, 2]))
        ).encode()))
        assert a.pool_key == b.pool_key
        assert a.graph_key == b.graph_key

    def test_build_plan_rejects_bad_params(self):
        bad = dict(ESTIMATE_PARAMS, seeds=[])
        with pytest.raises(ProtocolError, match="seeds"):
            build_plan(parse_request(json.dumps(
                estimate_request("q", params=bad)).encode()))
        with pytest.raises(ProtocolError, match="dataset"):
            build_plan(parse_request(
                b'{"op": "solve", "id": "q", "params": {"dataset": "nope"}}'
            ))


# ----------------------------------------------------------------------
# Cache + circuit breaker
# ----------------------------------------------------------------------


class TestServiceCache:
    def test_lru_evicts_by_byte_budget(self):
        cache = ServiceCache(max_bytes=100)
        assert cache.put(("a",), "A", 40)
        assert cache.put(("b",), "B", 40)
        assert cache.get(("a",)) == "A"     # refresh a: b is now oldest
        assert cache.put(("c",), "C", 40)   # over budget -> evict b
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == "A"
        assert cache.get(("c",)) == "C"
        assert cache.stats.evictions == 1
        assert cache.total_bytes == 80

    def test_oversize_entry_refused(self):
        cache = ServiceCache(max_bytes=10)
        assert not cache.put(("big",), "X", 11)
        assert len(cache) == 0

    def test_breaker_opens_after_threshold_discards(self):
        clock = itertools.count().__next__
        cache = ServiceCache(
            max_bytes=100, failure_threshold=2, cooldown_seconds=10.0,
            clock=lambda: float(clock()),
        )
        key = ("pool", "k")
        cache.put(key, "v", 1)
        cache.discard(key)
        assert cache.breaker_state(key) == "closed"
        cache.put(key, "v", 1)
        cache.discard(key)
        assert cache.breaker_state(key) == "open"
        assert cache.get(key) is None
        assert not cache.put(key, "v", 1)
        assert cache.stats.breaker_opened == 1
        assert cache.stats.breaker_rejected == 2
        assert cache.stats.invalidations == 2

    def test_breaker_half_open_then_close(self):
        now = [0.0]
        cache = ServiceCache(
            max_bytes=100, failure_threshold=1, cooldown_seconds=5.0,
            clock=lambda: now[0],
        )
        key = ("pool", "k")
        cache.discard(key)
        assert cache.breaker_state(key) == "open"
        now[0] = 5.0
        assert cache.breaker_state(key) == "half-open"
        assert cache.put(key, "v", 1)       # half-open admits one store
        cache.succeed(key)
        assert cache.breaker_state(key) == "closed"

    def test_failure_during_half_open_restarts_cooldown(self):
        now = [0.0]
        cache = ServiceCache(
            max_bytes=100, failure_threshold=1, cooldown_seconds=5.0,
            clock=lambda: now[0],
        )
        key = ("pool", "k")
        cache.discard(key)
        now[0] = 5.0
        assert cache.breaker_state(key) == "half-open"
        cache.discard(key)                   # strike during half-open
        assert cache.breaker_state(key) == "open"
        now[0] = 9.0
        assert cache.breaker_state(key) == "open"
        now[0] = 10.0
        assert cache.breaker_state(key) == "half-open"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ServiceCache(max_bytes=-1)
        with pytest.raises(ConfigurationError):
            ServiceCache(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            ServiceCache(cooldown_seconds=-1.0)


# ----------------------------------------------------------------------
# End-to-end sessions
# ----------------------------------------------------------------------


class TestServiceEndToEnd:
    def test_session_replies_are_bit_identical_to_offline(self, offline_estimate):
        config = ServiceConfig(jobs=1, max_in_flight=2, max_queue=4)
        with ServiceThread(config) as harness:
            with harness.connect() as client:
                cold = client.request(estimate_request("e1"))
                assert cold["ok"] and cold["op"] == "estimate"
                assert cold["result"]["estimate"] == offline_estimate
                assert cold["meta"] == {"carry": "none", "degraded": False}
                # Warm repeat: adopted carry, byte-identical result body.
                warm = client.request(estimate_request("e2"))
                assert warm["result"] == cold["result"]
                assert warm["meta"]["carry"] == "adopted"
                health = client.request({"op": "health", "id": "h"})
                counters = health["result"]["counters"]
                assert counters["carry_adopted"] == 1
                assert health["result"]["cache"]["hits"] >= 2

    def test_solve_matches_offline_run(self):
        graph = datasets.load_dataset(DATASET, n=120, seed=0)
        with ExecutionContext(jobs=1) as context, ASTI(
            IndependentCascade(), context=context
        ) as algorithm:
            reference = algorithm.run(graph, 12, seed=3)
        config = ServiceConfig(jobs=1)
        with ServiceThread(config) as harness:
            with harness.connect() as client:
                reply = client.request({
                    "op": "solve", "id": "s1", "seed": 3,
                    "params": {"dataset": DATASET, "n": 120, "eta": 12},
                })
        assert reply["ok"]
        assert reply["result"]["seeds"] == [int(s) for s in reference.seeds]
        assert reply["result"]["spread"] == int(reference.spread)
        assert reply["result"]["total_samples"] == int(reference.total_samples)

    def test_failures_are_typed_replies_on_an_open_connection(self):
        config = ServiceConfig(jobs=1)
        with ServiceThread(config) as harness:
            with harness.connect() as client:
                client.send_raw(b"this is not json\n")
                bad = client.read_reply()
                assert bad == {
                    "id": None, "ok": False,
                    "error": bad["error"],
                }
                assert bad["error"]["code"] == "invalid_request"
                # An unsatisfiable target is rejected by the library's
                # early validation (the 'infeasible' code is reserved for
                # mid-run InfeasibleTargetError, which early validation
                # makes unreachable from well-formed requests).
                infeasible = client.request({
                    "op": "solve", "id": "inf", "seed": 0,
                    "params": {"dataset": DATASET, "n": 60, "eta": 100000},
                })
                assert not infeasible["ok"]
                assert infeasible["error"]["code"] == "invalid_request"
                assert "eta" in infeasible["error"]["message"]
                # The connection survived both failures.
                health = client.request({"op": "health", "id": "h"})
                assert health["ok"]

    def test_zero_deadline_expires_in_queue(self):
        config = ServiceConfig(jobs=1)
        with ServiceThread(config) as harness:
            with harness.connect() as client:
                reply = client.request(estimate_request("d1", deadline_ms=0))
                assert not reply["ok"]
                assert reply["error"]["code"] == "deadline_exceeded"
                assert reply["error"]["stage"] == "queued"
                health = client.request({"op": "health", "id": "h"})
                assert health["result"]["counters"]["deadline_queued"] == 1

    def test_running_deadline_returns_structured_timeout(self):
        config = ServiceConfig(
            jobs=1,
            service_injections=(
                ServiceFaultInjection(kind="slow_handler", nth=0,
                                      delay_seconds=1.0),
            ),
        )
        with ServiceThread(config) as harness:
            with harness.connect() as client:
                reply = client.request(estimate_request("d2", deadline_ms=100))
                assert reply["error"]["code"] == "deadline_exceeded"
                assert reply["error"]["stage"] == "running"

    def test_overload_sheds_with_typed_reply_not_a_dropped_connection(self):
        # One compute slot, zero queue: while request A stalls in its
        # slot, request B on a second connection must be shed.
        config = ServiceConfig(
            jobs=1, max_in_flight=1, max_queue=0,
            service_injections=(
                ServiceFaultInjection(kind="slow_handler", nth=0,
                                      delay_seconds=1.0),
            ),
        )
        with ServiceThread(config) as harness:
            slow = harness.connect()
            fast = harness.connect()
            try:
                slow.send(estimate_request("slow"))
                deadline = time.monotonic() + 5.0
                shed = None
                while time.monotonic() < deadline:
                    shed = fast.request(estimate_request("fast"))
                    if not shed["ok"]:
                        break
                assert shed is not None and not shed["ok"]
                assert shed["error"]["code"] == "overloaded"
                assert "retry_after_ms" in shed["error"]
                # Both connections still deliver: the stalled request
                # completes, and the shed connection takes new work.
                slow_reply = slow.read_reply()
                assert slow_reply["ok"]
                health = fast.request({"op": "health", "id": "h"})
                assert health["result"]["counters"]["shed_overloaded"] >= 1
            finally:
                slow.close()
                fast.close()

    def test_corrupted_cache_entry_is_invalidated_not_served(
        self, offline_estimate
    ):
        config = ServiceConfig(
            jobs=1,
            service_injections=(
                ServiceFaultInjection(kind="cache_corrupt", nth=1),
            ),
        )
        with ServiceThread(config) as harness:
            with harness.connect() as client:
                cold = client.request(estimate_request("c1"))
                poisoned = client.request(estimate_request("c2"))
                assert poisoned["ok"]
                # The tampered carry was rejected and rebuilt from
                # scratch: same bytes as the cold run and the offline
                # reference, with the discard recorded.
                assert poisoned["result"] == cold["result"]
                assert poisoned["result"]["estimate"] == offline_estimate
                assert poisoned["meta"]["carry"] == "discarded"
                health = client.request({"op": "health", "id": "h"})
                assert health["result"]["cache"]["invalidations"] == 1
                assert health["result"]["counters"]["carry_discarded"] == 1

    def test_pool_exhaustion_degrades_to_in_process(self, offline_estimate):
        # Every attempt of chunk 0 crashes and the policy allows no
        # rebuilds: the shared pool raises WorkerPoolError, the service
        # quarantines it and re-runs in-process — same bytes, flagged
        # degraded.
        config = ServiceConfig(
            jobs=2,
            quarantine_seconds=60.0,
            fault_policy=FaultPolicy(
                chunk_timeout=60.0, max_rebuilds=0, on_pool_failure="raise",
            ),
            worker_injection=FaultInjection(
                kind="crash", nth=0, attempts=(0, 1, 2, 3),
            ),
        )
        with ServiceThread(config) as harness:
            with harness.connect() as client:
                reply = client.request(estimate_request("g1"))
                assert reply["ok"]
                assert reply["result"]["estimate"] == offline_estimate
                assert reply["meta"]["degraded"] is True
                health = client.request({"op": "health", "id": "h"})
                assert health["result"]["status"] == "degraded"
                assert health["result"]["counters"]["degraded_requests"] == 1
                assert health["result"]["runtime"]["quarantined"] is True

    def test_drain_delivers_in_flight_reply(self):
        config = ServiceConfig(
            jobs=1,
            service_injections=(
                ServiceFaultInjection(kind="slow_handler", nth=0,
                                      delay_seconds=0.4),
            ),
        )
        harness = ServiceThread(config).start()
        client = harness.connect()
        try:
            client.send(estimate_request("inflight"))
            time.sleep(0.1)  # let the request reach its compute slot
            drainer = threading.Thread(target=harness.drain)
            drainer.start()
            reply = client.read_reply()
            drainer.join(timeout=30.0)
            assert not drainer.is_alive()
            assert reply["ok"]
            assert reply["id"] == "inflight"
        finally:
            client.close()

    def test_draining_server_rejects_new_work_typed(self):
        config = ServiceConfig(jobs=1)
        harness = ServiceThread(config).start()
        client = harness.connect()
        try:
            # Establish the session first: a connection still sitting in
            # the kernel's accept backlog when the listener closes is
            # dropped by TCP itself, which is outside the drain contract.
            assert client.request({"op": "health", "id": "h0"})["ok"]
            loop = harness._loop
            assert loop is not None
            loop.call_soon_threadsafe(harness.service.begin_drain)
            time.sleep(0.05)
            try:
                reply = client.request(estimate_request("late"))
            except ServiceError:
                # The drain may close the idle connection before the
                # request lands — a clean EOF, not a dropped reply.
                return
            # If it landed first, the refusal is typed.
            assert not reply["ok"]
            assert reply["error"]["code"] == "shutting_down"
        finally:
            client.close()
            harness.drain()


class TestServiceConfigValidation:
    def test_rejects_bad_limits(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(jobs=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(max_in_flight=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(max_queue=-1)
        with pytest.raises(ConfigurationError):
            ServiceConfig(quarantine_seconds=-1.0)

    def test_service_thread_rejects_stdio(self):
        with pytest.raises(ServiceError):
            ServiceThread(ServiceConfig(stdio=True))
