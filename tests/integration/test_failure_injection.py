"""Failure-injection tests: the system must fail loudly, not loop or lie.

Adaptive loops are prone to two silent failure modes — infinite selection
loops when progress stalls, and quietly wrong answers when ground truth and
graph drift apart.  These tests corrupt inputs on purpose and pin the
error behaviour.
"""

import numpy as np
import pytest

from repro.core.asti import ASTI, run_adaptive_policy
from repro.core.policy import SeedSelector, Selection
from repro.core.session import AdaptiveSession
from repro.core.trim import TrimSelector
from repro.diffusion.ic import IndependentCascade
from repro.diffusion.realization import ICRealization
from repro.errors import (
    ConfigurationError,
    InfeasibleTargetError,
    ReproError,
    SamplingError,
)
from repro.graph import generators
from repro.graph.residual import ResidualGraph


@pytest.fixture
def model():
    return IndependentCascade()


class TestDisconnectedWorlds:
    def test_blocked_world_still_terminates(self, model):
        """Every edge blocked: the policy must seed eta nodes one by one."""
        g = generators.path_graph(10, probability=0.5)
        dead_world = ICRealization(g, np.zeros(g.m, dtype=bool))
        result = ASTI(model, max_samples=2000).run(g, 6, realization=dead_world, seed=0)
        assert result.seed_count == 6
        assert result.spread == 6

    def test_eta_larger_than_reachable_is_still_feasible_by_seeding(self, model):
        # Disconnection does not make ASM infeasible: isolated nodes can be
        # seeded directly.
        g = generators.path_graph(4, probability=0.5)
        dead_world = ICRealization(g, np.zeros(g.m, dtype=bool))
        result = ASTI(model, max_samples=2000).run(g, 4, realization=dead_world, seed=1)
        assert result.spread == 4
        assert result.seed_count == 4


class TestMisbehavingSelector:
    def test_selector_returning_invalid_node_fails_fast(self, model):
        class BadSelector(SeedSelector):
            name = "bad"

            def select(self, residual, rng):
                return Selection(nodes=[residual.n + 5])

        g = generators.path_graph(5)
        with pytest.raises(ReproError):
            run_adaptive_policy(g, 3, model, BadSelector(), seed=0)

    def test_selector_raising_propagates(self, model):
        class ExplodingSelector(SeedSelector):
            name = "boom"

            def select(self, residual, rng):
                raise SamplingError("injected failure")

        g = generators.path_graph(5)
        with pytest.raises(SamplingError, match="injected failure"):
            run_adaptive_policy(g, 3, model, ExplodingSelector(), seed=0)


class TestCorruptedResidualState:
    def test_inconsistent_shortfall_detected(self, model, rng):
        # Shortfall exceeding the residual node count must be rejected by
        # the selector instead of looping.
        g = generators.path_graph(4)
        corrupted = ResidualGraph(
            graph=g,
            original_ids=np.arange(4),
            shortfall=9,
            round_index=1,
        )
        with pytest.raises(InfeasibleTargetError):
            TrimSelector(model).select(corrupted, rng)


class TestSessionGuards:
    def test_foreign_realization_rejected(self, model):
        g1 = generators.path_graph(4)
        g2 = generators.path_graph(4)
        phi = model.sample_realization(g2, seed=0)
        with pytest.raises(ConfigurationError):
            AdaptiveSession(g1, eta=2, realization=phi)

    def test_observing_garbage_local_ids_fails(self, model):
        g = generators.path_graph(4)
        phi = model.sample_realization(g, seed=0)
        session = AdaptiveSession(g, eta=2, realization=phi)
        with pytest.raises(ReproError):
            session.observe([99])


class TestNumericEdgeCases:
    def test_eta_one(self, model):
        g = generators.path_graph(5, probability=0.5)
        result = ASTI(model, max_samples=2000).run(g, 1, seed=0)
        assert result.seed_count == 1
        assert result.spread >= 1

    def test_two_node_graph(self, model):
        g = generators.path_graph(2, probability=0.5)
        result = ASTI(model, max_samples=2000).run(g, 2, seed=0)
        assert result.spread == 2

    def test_edgeless_graph(self, model):
        from repro.graph.digraph import DiGraph

        g = DiGraph.from_edges(5, [])
        result = ASTI(model, max_samples=2000).run(g, 3, seed=0)
        # No edges: each seed activates exactly itself.
        assert result.seed_count == 3

    def test_epsilon_extremes_rejected_everywhere(self, model):
        for eps in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ConfigurationError):
                ASTI(model, epsilon=eps)
            with pytest.raises(ConfigurationError):
                TrimSelector(model, epsilon=eps)
