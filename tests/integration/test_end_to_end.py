"""End-to-end integration tests: every algorithm, shared worlds, both models.

These are the "does the whole machine behave like the paper says" tests:
feasibility for adaptive policies, the batch-size trade-off, the adaptive
advantage over non-adaptive selection, and cross-model support.
"""

import numpy as np
import pytest

from repro.baselines.adaptim import AdaptIM
from repro.baselines.ateuc import ATEUC
from repro.core.asti import ASTI
from repro.diffusion.ic import IndependentCascade
from repro.diffusion.lt import LinearThreshold
from repro.experiments import datasets
from repro.experiments.harness import sample_shared_realizations


@pytest.fixture(scope="module")
def graph():
    return datasets.load_dataset("nethept-sim", n=300, seed=0)


@pytest.fixture(scope="module")
def ic():
    return IndependentCascade()


@pytest.fixture(scope="module")
def worlds(graph, ic):
    return sample_shared_realizations(graph, ic, 5, seed=11)


ETA = 30
CAP = 6000  # per-round sample cap keeps CI latency sane


class TestFeasibilityInvariant:
    """Adaptive policies must reach eta on EVERY world (paper Sec. 2.2)."""

    @pytest.mark.parametrize("batch", [1, 2, 4])
    def test_asti_variants(self, graph, ic, worlds, batch):
        algorithm = ASTI(ic, batch_size=batch, max_samples=CAP)
        for i, phi in enumerate(worlds):
            result = algorithm.run(graph, ETA, realization=phi, seed=100 + i)
            assert result.spread >= ETA
            # No wasted rounds: every round activated something.
            assert all(r.observation.marginal_spread >= 1 for r in result.rounds)

    def test_adaptim(self, graph, ic, worlds):
        algorithm = AdaptIM(ic, max_samples=CAP)
        for i, phi in enumerate(worlds):
            result = algorithm.run(graph, ETA, realization=phi, seed=200 + i)
            assert result.spread >= ETA


class TestAdaptiveVsNonAdaptive:
    def test_ateuc_can_miss_what_asti_always_hits(self, graph, ic, worlds):
        """The paper's central comparison on shared worlds."""
        asti_counts = []
        for i, phi in enumerate(worlds):
            result = ASTI(ic, max_samples=CAP).run(graph, ETA, realization=phi, seed=i)
            assert result.spread >= ETA
            asti_counts.append(result.seed_count)
        ateuc = ATEUC(ic).run(graph, ETA, seed=7)
        ateuc_spreads = [phi.spread(ateuc.seeds) for phi in worlds]
        # ATEUC's estimate targets eta in expectation; per-world spreads vary
        # around it while ASTI never misses.
        assert min(ateuc_spreads) < max(ateuc_spreads)
        assert np.mean(asti_counts) <= ateuc.seed_count * 1.6


class TestBatchTradeoff:
    def test_fewer_rounds_with_batches(self, graph, ic, worlds):
        phi = worlds[0]
        single = ASTI(ic, max_samples=CAP).run(graph, ETA, realization=phi, seed=1)
        batched = ASTI(ic, batch_size=8, max_samples=CAP).run(
            graph, ETA, realization=phi, seed=1
        )
        assert len(batched.rounds) < len(single.rounds) or len(single.rounds) == 1
        # Batching may spend extra seeds, but never an order of magnitude.
        assert batched.seed_count <= max(8, 3 * single.seed_count)


class TestLTModelEndToEnd:
    def test_all_algorithms_under_lt(self, graph):
        lt = LinearThreshold()
        phi = lt.sample_realization(graph, seed=5)
        for algorithm in (
            ASTI(lt, max_samples=CAP),
            ASTI(lt, batch_size=4, max_samples=CAP),
            AdaptIM(lt, max_samples=CAP),
        ):
            result = algorithm.run(graph, ETA, realization=phi, seed=3)
            assert result.spread >= ETA
        ateuc = ATEUC(lt).run(graph, ETA, seed=3)
        assert ateuc.seed_count >= 1


class TestDeterminism:
    def test_full_pipeline_reproducible(self, graph, ic):
        def run_once():
            worlds = sample_shared_realizations(graph, ic, 2, seed=42)
            return [
                ASTI(ic, max_samples=CAP)
                .run(graph, ETA, realization=phi, seed=j)
                .seeds
                for j, phi in enumerate(worlds)
            ]

        assert run_once() == run_once()


class TestSeedsAreValidNodes:
    def test_seed_ids_within_graph(self, graph, ic, worlds):
        result = ASTI(ic, max_samples=CAP).run(graph, ETA, realization=worlds[0], seed=0)
        assert all(0 <= s < graph.n for s in result.seeds)
        assert len(set(result.seeds)) == len(result.seeds)  # no reseeding
