"""Unit tests for ASCII line plots."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.plotting import ascii_line_plot


class TestAsciiLinePlot:
    def test_basic_structure(self):
        text = ascii_line_plot(
            [0.01, 0.05, 0.1],
            {"ASTI": [2, 5, 9], "ATEUC": [3, 7, 14]},
            title="Figure 4",
        )
        lines = text.splitlines()
        assert lines[0] == "Figure 4"
        assert "A=ASTI" in lines[-1]
        assert "B=ATEUC" in lines[-1]
        assert any("A" in line for line in lines[1:-3])
        assert any("+" in line for line in lines)

    def test_extremes_on_border_rows(self):
        text = ascii_line_plot([0, 1], {"y": [1.0, 10.0]})
        lines = text.splitlines()
        assert "10.00" in lines[0]   # top label = max
        # bottom plot row carries the min label
        assert any("1.00" in line for line in lines)

    def test_log_scale_labels(self):
        text = ascii_line_plot([0, 1], {"t": [0.01, 100.0]}, log_y=True)
        assert "1e" in text

    def test_log_scale_handles_nonpositive(self):
        text = ascii_line_plot([0, 1, 2], {"t": [0.0, 0.5, 5.0]}, log_y=True)
        assert text  # clamped, no math domain error

    def test_single_point(self):
        text = ascii_line_plot([1], {"y": [3.0]})
        assert "A" in text

    def test_many_series_markers(self):
        series = {f"s{i}": [i, i + 1] for i in range(5)}
        text = ascii_line_plot([0, 1], series)
        for marker in "ABCDE":
            assert marker in text

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ascii_line_plot([0, 1], {})
        with pytest.raises(ConfigurationError):
            ascii_line_plot([0, 1], {"y": [1]})  # length mismatch
        with pytest.raises(ConfigurationError):
            ascii_line_plot([0], {"y": [1]}, width=4)
        with pytest.raises(ConfigurationError):
            ascii_line_plot([], {"y": []})

    def test_y_label_line(self):
        text = ascii_line_plot([0, 1], {"y": [1, 2]}, y_label="seeds")
        assert text.splitlines()[0] == "seeds"

    def test_flat_series(self):
        # Zero span must not divide by zero.
        text = ascii_line_plot([0, 1, 2], {"y": [5, 5, 5]})
        assert "A" in text
