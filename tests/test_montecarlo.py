"""Unit tests for Monte-Carlo spread estimation."""

import pytest

from repro.diffusion.montecarlo import (
    estimate_activation_probabilities,
    estimate_spread,
    estimate_truncated_spread,
)
from repro.errors import ConfigurationError
from repro.graph import generators


class TestEstimateSpread:
    def test_deterministic_graph_exact(self, ic_model, path3, rng):
        est = estimate_spread(path3, ic_model, [0], samples=20, seed=rng)
        assert est.mean == pytest.approx(3.0)
        assert est.std_error == 0.0

    def test_two_hop_half_probability(self, ic_model, rng):
        # 0 -> 1 with p=0.5: E[I({0})] = 1.5.
        g = generators.path_graph(2, probability=0.5)
        est = estimate_spread(g, ic_model, [0], samples=3000, seed=rng)
        assert est.mean == pytest.approx(1.5, abs=0.06)

    def test_confidence_interval_brackets_truth(self, ic_model, rng):
        g = generators.path_graph(2, probability=0.5)
        est = estimate_spread(g, ic_model, [0], samples=2000, seed=rng)
        low, high = est.confidence_interval()
        assert low <= 1.5 <= high

    def test_invalid_samples(self, ic_model, path3):
        with pytest.raises(ConfigurationError):
            estimate_spread(path3, ic_model, [0], samples=0)


class TestEstimateTruncatedSpread:
    def test_truncation_applied(self, ic_model, star6, rng):
        est = estimate_truncated_spread(star6, ic_model, [0], eta=3, samples=50, seed=rng)
        assert est.mean == pytest.approx(3.0)

    def test_no_truncation_when_eta_large(self, ic_model, star6, rng):
        est = estimate_truncated_spread(star6, ic_model, [0], eta=6, samples=50, seed=rng)
        assert est.mean == pytest.approx(6.0)

    def test_matches_paper_example(self, ic_model, paper_example, rng):
        # Example 2.3: E[Gamma(v1)] = 1.75 at eta = 2 while E[I(v1)] = 2.75.
        truncated = estimate_truncated_spread(
            paper_example, ic_model, [0], eta=2, samples=6000, seed=rng
        )
        spread = estimate_spread(paper_example, ic_model, [0], samples=6000, seed=rng)
        assert truncated.mean == pytest.approx(1.75, abs=0.05)
        assert spread.mean == pytest.approx(2.75, abs=0.08)

    def test_invalid_eta(self, ic_model, path3):
        with pytest.raises(ConfigurationError):
            estimate_truncated_spread(path3, ic_model, [0], eta=0, samples=10)


class TestActivationProbabilities:
    def test_certain_graph(self, ic_model, path3, rng):
        probs = estimate_activation_probabilities(path3, ic_model, [0], samples=20, seed=rng)
        assert probs.tolist() == [1.0, 1.0, 1.0]

    def test_probabilities_bounded(self, ic_model, small_social, rng):
        probs = estimate_activation_probabilities(
            small_social, ic_model, [0], samples=30, seed=rng
        )
        assert (probs >= 0).all() and (probs <= 1).all()
        assert probs[0] == 1.0

    def test_lt_model_supported(self, lt_model, path5_half, rng):
        probs = estimate_activation_probabilities(
            path5_half, lt_model, [0], samples=200, seed=rng
        )
        # Monotone decay along the chain.
        assert probs[0] == 1.0
        assert probs[1] > probs[3]
