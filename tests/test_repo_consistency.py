"""Repository-consistency checks: docs, benches, and examples stay in sync.

Cheap guards against the classic bit-rot failure where DESIGN.md promises a
bench module that was renamed, or the README lists an example that no
longer exists.
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def readme():
    return (ROOT / "README.md").read_text(encoding="utf-8")


@pytest.fixture(scope="module")
def design():
    return (ROOT / "DESIGN.md").read_text(encoding="utf-8")


class TestRequiredDocuments:
    @pytest.mark.parametrize(
        "name", ["README.md", "DESIGN.md", "EXPERIMENTS.md", "pyproject.toml"]
    )
    def test_exists_and_nonempty(self, name):
        path = ROOT / name
        assert path.exists(), name
        assert len(path.read_text(encoding="utf-8")) > 200, name


class TestBenchInventory:
    def test_every_design_bench_target_exists(self, design):
        for match in re.finditer(r"`benchmarks/(bench_\w+\.py)`", design):
            assert (ROOT / "benchmarks" / match.group(1)).exists(), match.group(1)

    def test_every_paper_artifact_has_a_bench(self):
        benches = {p.name for p in (ROOT / "benchmarks").glob("bench_*.py")}
        expected = {
            "bench_table2_datasets.py",
            "bench_table3_improvement.py",
            "bench_fig3_degree_distribution.py",
            "bench_fig4_seeds_ic.py",
            "bench_fig5_time_ic.py",
            "bench_fig6_seeds_lt.py",
            "bench_fig7_time_lt.py",
            "bench_fig8_spread_distribution.py",
            "bench_fig9_spread_ic.py",
            "bench_fig10_marginal_spread.py",
            "bench_ablation_rounding.py",
            "bench_ablation_truncated_vs_vanilla.py",
        }
        assert expected <= benches

    def test_experiments_md_covers_every_artifact(self):
        text = (ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        for artifact in (
            "Table 2", "Table 3", "Figure 3", "Figure 4", "Figure 5",
            "Figure 6", "Figure 8", "Figure 9", "Figure 10",
        ):
            assert artifact in text, artifact


class TestExampleInventory:
    def test_readme_examples_exist(self, readme):
        for match in re.finditer(r"examples/(\w+\.py)", readme):
            assert (ROOT / "examples" / match.group(1)).exists(), match.group(1)

    def test_at_least_three_examples(self):
        examples = list((ROOT / "examples").glob("*.py"))
        assert len(examples) >= 3
        names = {p.name for p in examples}
        assert "quickstart.py" in names

    def test_examples_have_main_guard(self):
        for path in (ROOT / "examples").glob("*.py"):
            text = path.read_text(encoding="utf-8")
            assert '__name__ == "__main__"' in text, path.name
            assert text.startswith('"""'), f"{path.name} missing docstring"


class TestVersionConsistency:
    def test_pyproject_matches_package(self):
        import repro

        pyproject = (ROOT / "pyproject.toml").read_text(encoding="utf-8")
        match = re.search(r'^version = "([^"]+)"', pyproject, re.MULTILINE)
        assert match
        assert match.group(1) == repro.__version__
