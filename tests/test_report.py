"""Unit tests for ASCII report rendering."""

import pytest

from repro.experiments.report import format_histogram, format_series, format_table


class TestFormatTable:
    def test_alignment_and_rule(self):
        text = format_table(["name", "n"], [["nethept", 1200], ["youtube", 2400]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert "nethept" in lines[2]

    def test_title(self):
        text = format_table(["a"], [[1]], title="Table 2")
        assert text.splitlines()[0] == "Table 2"

    def test_float_formatting(self):
        text = format_table(["x"], [[3.14159]])
        assert "3.142" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestFormatSeries:
    def test_one_column_per_series(self):
        text = format_series(
            "eta/n",
            [0.01, 0.05],
            {"ASTI": [3, 8], "ATEUC": [5, 11]},
            title="Figure 4(a)",
        )
        lines = text.splitlines()
        assert "ASTI" in lines[1] and "ATEUC" in lines[1]
        assert len(lines) == 2 + 2 + 1  # title + header + rule + 2 rows

    def test_precision(self):
        text = format_series("x", [1], {"y": [0.123456]}, precision=4)
        assert "0.1235" in text


class TestFormatHistogram:
    def test_log_binning(self):
        counts = {1: 0.5, 2: 0.2, 3: 0.1, 8: 0.05, 100: 0.01}
        text = format_histogram(counts, title="degrees")
        assert text.splitlines()[0] == "degrees"
        assert "deg~" in text
        assert "#" in text

    def test_empty(self):
        assert format_histogram({}, title="empty") == "empty"

    def test_bar_lengths_scale(self):
        counts = {1: 0.8, 64: 0.01}
        lines = format_histogram(counts).splitlines()
        big = lines[0].count("#")
        small = lines[-1].count("#")
        assert big > small
