"""The content-addressed pool store: persistence, corruption, eviction.

Covers the :mod:`repro.store` disk layer directly (round trips, digest
verification, LRU eviction, concurrency) and its consumers (warm fills,
CRN replay, harness worlds, service warm-start/spill) end to end, always
with the bar that matters: a warm run is byte-for-byte the cold run.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.diffusion.ic import IndependentCascade
from repro.diffusion.montecarlo import CRNSpreadEvaluator
from repro.experiments.config import quick_config
from repro.experiments.harness import run_sweep
from repro.graph import generators, weighting
from repro.runtime.context import ExecutionContext
from repro.sampling.coverage import CoverageIndex
from repro.sampling.engine import mrr_batch_sampler
from repro.sampling.mrr import RootCountRule
from repro.store import (
    ARTIFACT_FORMAT_VERSION,
    PoolStore,
    artifact_key,
    canonical_json,
    generator_state,
    graph_fingerprint,
    restore_generator_state,
)


@pytest.fixture
def graph():
    topology = generators.preferential_attachment(300, 3, seed=1, directed=False)
    return weighting.weighted_cascade(topology)


def make_store(tmp_path, **kwargs):
    return PoolStore(tmp_path / "store", **kwargs)


def sample_arrays(tag=0):
    return {
        "members": np.arange(10, dtype=np.int64) + tag,
        "weights": np.linspace(0.0, 1.0, 5),
    }


class TestDiskStore:
    def test_round_trip(self, tmp_path):
        store = make_store(tmp_path)
        key = artifact_key("pool", {"a": 1})
        assert store.save(key, sample_arrays(), {"note": "x"})
        arrays, meta = store.load(key)
        assert np.array_equal(arrays["members"], sample_arrays()["members"])
        assert meta == {"note": "x"}
        assert store.stats.hits == 1 and store.stats.stores == 1

    def test_miss_returns_none(self, tmp_path):
        store = make_store(tmp_path)
        assert store.load("pool-deadbeef") is None
        assert store.stats.misses == 1

    def test_truncated_payload_discarded_silently(self, tmp_path):
        store = make_store(tmp_path)
        key = artifact_key("pool", {"a": 2})
        store.save(key, sample_arrays())
        payload = store.root / f"{key}.npz"
        payload.write_bytes(payload.read_bytes()[:20])
        assert store.load(key) is None
        assert store.stats.corrupt_discarded == 1
        # Both files were removed — the next save regenerates cleanly.
        assert not payload.exists()
        assert store.save(key, sample_arrays())
        assert store.load(key) is not None

    def test_digest_mismatch_discarded(self, tmp_path):
        store = make_store(tmp_path)
        key = artifact_key("pool", {"a": 3})
        store.save(key, sample_arrays())
        manifest_path = store.root / f"{key}.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["digest"] = "0" * 64
        manifest_path.write_text(json.dumps(manifest))
        assert store.load(key) is None
        assert store.stats.corrupt_discarded == 1

    def test_garbage_manifest_discarded(self, tmp_path):
        store = make_store(tmp_path)
        key = artifact_key("pool", {"a": 4})
        store.save(key, sample_arrays())
        (store.root / f"{key}.json").write_text("{not json")
        assert store.load(key) is None

    def test_version_mismatch_discarded(self, tmp_path):
        store = make_store(tmp_path)
        key = artifact_key("pool", {"a": 5})
        store.save(key, sample_arrays())
        manifest_path = store.root / f"{key}.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["version"] = ARTIFACT_FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        assert store.load(key) is None

    def test_lru_eviction_order(self, tmp_path):
        clock = iter(range(1000))
        sizer = make_store(tmp_path / "sizer")
        sizer.save("pool-probe", sample_arrays())
        entry_bytes = sizer.total_bytes()
        # Budget for ~1.5 entries: each new save evicts the older one.
        store = make_store(
            tmp_path, max_bytes=int(1.5 * entry_bytes), clock=lambda: next(clock)
        )
        store.save("pool-aa", sample_arrays())
        store.save("pool-bb", sample_arrays())
        assert store.keys() == ["pool-bb"]
        assert store.stats.evictions == 1

    def test_oversized_entry_not_kept(self, tmp_path):
        store = make_store(tmp_path, max_bytes=1)
        store.save("pool-aa", sample_arrays())
        # An entry that alone exceeds the budget is evicted immediately,
        # mirroring the service cache's oversized-entry policy.
        assert store.keys() == []

    def test_touch_refreshes_recency(self, tmp_path):
        clock = iter(range(1000))
        nbytes = None
        store = make_store(tmp_path, max_bytes=10**9, clock=lambda: next(clock))
        store.save("pool-aa", sample_arrays())
        store.save("pool-bb", sample_arrays())
        store.save("pool-cc", sample_arrays())
        # Loading "aa" makes it most recent; shrink the budget so only
        # two entries fit and save another — "bb" must go first.
        store.load("pool-aa")
        entry_bytes = store.total_bytes() // 3
        store.max_bytes = int(2.5 * entry_bytes)
        store.save("pool-dd", sample_arrays())
        kept = set(store.keys())
        assert "pool-dd" in kept and "pool-aa" in kept
        assert "pool-bb" not in kept

    def test_save_never_raises(self, tmp_path):
        store = make_store(tmp_path)
        store.root.parent.chmod(0o555)
        try:
            ok = store.save("pool-ro", sample_arrays())
        finally:
            store.root.parent.chmod(0o755)
        if not ok:  # root (in CI containers) may bypass the chmod
            assert store.stats.store_failures == 1

    def test_concurrent_readers_and_writers(self, tmp_path):
        """Atomic publish: a reader never sees a half-written artifact."""
        store = make_store(tmp_path)
        key = artifact_key("pool", {"race": True})
        stop = threading.Event()
        bad = []

        def writer():
            i = 0
            while not stop.is_set():
                PoolStore(store.root).save(key, sample_arrays(i % 7))
                i += 1

        def reader():
            while not stop.is_set():
                loaded = PoolStore(store.root).load(key)
                if loaded is not None:
                    members = loaded[0]["members"]
                    tag = int(members[0])
                    if not np.array_equal(members, sample_arrays(tag)["members"]):
                        bad.append(members)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        threading.Event().wait(0.5)
        stop.set()
        for thread in threads:
            thread.join()
        assert not bad

    def test_pickled_store_drops_stats(self, tmp_path):
        import pickle

        store = make_store(tmp_path)
        store.save("pool-aa", sample_arrays())
        clone = pickle.loads(pickle.dumps(store))
        assert clone.root == store.root
        assert clone.stats.stores == 0
        assert clone.load("pool-aa") is not None

    def test_empty_root_rejected(self):
        # Path("") means the cwd; an empty root must never scatter
        # artifacts into the working tree (same guard at the CLI and
        # ExperimentConfig boundaries).
        with pytest.raises(ValueError, match="store root"):
            PoolStore("")
        with pytest.raises(ValueError, match="store root"):
            PoolStore("   ")


class TestKeys:
    def test_canonical_json_is_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_graph_fingerprint_distinguishes_graphs(self, graph):
        other = weighting.weighted_cascade(
            generators.preferential_attachment(300, 3, seed=2, directed=False)
        )
        assert graph_fingerprint(graph) != graph_fingerprint(other)
        assert graph_fingerprint(graph) == graph_fingerprint(graph)

    def test_storage_policy_in_fingerprint(self, graph):
        wide = graph.with_storage("wide")
        assert graph_fingerprint(graph) != graph_fingerprint(wide)

    def test_artifact_key_isolates_kinds(self):
        assert artifact_key("pool", {"x": 1}) != artifact_key("crn", {"x": 1})
        assert artifact_key("pool", {"x": 1}).startswith("pool-")

    def test_generator_state_round_trip(self):
        rng = np.random.default_rng(42)
        rng.integers(0, 100, size=8)
        state = generator_state(rng)
        probe = rng.integers(0, 2**32, size=4)
        fresh = np.random.default_rng(0)
        assert restore_generator_state(fresh, state)
        assert np.array_equal(fresh.integers(0, 2**32, size=4), probe)

    def test_restore_rejects_foreign_state(self):
        rng = np.random.default_rng(0)
        assert not restore_generator_state(rng, {"bit_generator": "Philox"})
        assert not restore_generator_state(rng, {})


class TestWarmConsumers:
    def _fill(self, graph, store, seed=11, count=400, batch=128):
        context = ExecutionContext(sample_batch_size=batch, pool_store=store)
        engine = mrr_batch_sampler(
            graph,
            IndependentCascade(),
            RootCountRule.for_target(graph.n, 30),
            seed=seed,
            batch_size=batch,
            context=context,
        )
        index = CoverageIndex(graph.n)
        engine.fill(index, count)
        members, indptr = index.packed()
        probe = engine._rng.integers(0, 2**32, size=4)
        return members.copy(), indptr.copy(), probe

    def test_warm_pool_fill_bit_identical(self, graph, tmp_path):
        store = make_store(tmp_path)
        cold = self._fill(graph, store)
        warm_store = PoolStore(store.root)
        warm = self._fill(graph, warm_store)
        for c, w in zip(cold, warm):
            assert np.array_equal(c, w)
        assert warm_store.stats.hits >= 1

    def test_no_store_matches_store(self, graph, tmp_path):
        plain = self._fill(graph, None)
        cold = self._fill(graph, make_store(tmp_path))
        for p, c in zip(plain, cold):
            assert np.array_equal(p, c)

    def test_unseeded_sampler_skips_store(self, graph, tmp_path):
        store = make_store(tmp_path)
        context = ExecutionContext(pool_store=store)
        engine = mrr_batch_sampler(
            graph,
            IndependentCascade(),
            RootCountRule.for_target(graph.n, 30),
            seed=None,
            context=context,
        )
        engine.fill(CoverageIndex(graph.n), 100)
        assert len(store) == 0

    def test_warm_crn_bit_identical(self, graph, tmp_path):
        store = make_store(tmp_path)
        candidates = [[v] for v in range(16)]

        def evaluate(active_store):
            evaluator = CRNSpreadEvaluator(
                graph,
                IndependentCascade(),
                n_sims=40,
                seed=5,
                context=ExecutionContext(pool_store=active_store),
            )
            return np.asarray(evaluator.evaluate_many(candidates))

        plain = evaluate(None)
        cold = evaluate(store)
        warm_store = PoolStore(store.root)
        warm = evaluate(warm_store)
        assert np.array_equal(plain, cold)
        assert np.array_equal(cold, warm)
        assert warm_store.stats.hits >= 1

    def test_warm_sweep_seed_counts_identical(self, tmp_path):
        config = quick_config(
            graph_n=200,
            realizations=2,
            algorithms=("ASTI",),
            eta_fractions=(0.1,),
        )

        def counts(pool_store):
            sweep = run_sweep(config.scaled(pool_store=pool_store))
            return [
                r.seed_count
                for eta in sweep.eta_values
                for r in sweep.outcomes[eta]["ASTI"].runs
            ]

        store_dir = str(tmp_path / "sweep-store")
        plain = counts(None)
        cold = counts(store_dir)
        warm = counts(store_dir)
        assert plain == cold == warm

    def test_corrupt_store_regenerates(self, graph, tmp_path):
        store = make_store(tmp_path)
        cold = self._fill(graph, store)
        for payload in store.root.glob("*.npz"):
            payload.write_bytes(b"garbage")
        warm_store = PoolStore(store.root)
        warm = self._fill(graph, warm_store)
        for c, w in zip(cold, warm):
            assert np.array_equal(c, w)
        assert warm_store.stats.corrupt_discarded >= 1

    def test_context_pickles_with_store(self, tmp_path):
        import pickle

        context = ExecutionContext(pool_store=make_store(tmp_path))
        clone = pickle.loads(pickle.dumps(context))
        assert clone.pool_store.root == context.pool_store.root

    def test_note_store_diagnostics(self, tmp_path):
        store = make_store(tmp_path)
        store.save("pool-aa", sample_arrays())
        context = ExecutionContext(pool_store=store)
        context.note_store()
        assert context.diagnostics["pool_store_stores"] == 1
        assert str(store.root) in context.diagnostics["pool_store_root"]


class TestServiceIntegration:
    def _pool(self):
        from repro.sampling.mrr import CarriedMRRPool

        return CarriedMRRPool(
            members=np.array([0, 1, 2, 3], dtype=np.int64),
            indptr=np.array([0, 2, 4], dtype=np.int64),
            root_counts=np.array([1, 2], dtype=np.int64),
        )

    def test_spill_then_warm_start(self, tmp_path):
        from repro.service.handlers import carried_pool_nbytes
        from repro.service.server import SeedService, ServiceConfig

        store_dir = str(tmp_path / "service-store")
        service = SeedService(ServiceConfig(pool_store=store_dir))
        pool = self._pool()
        key = ("pool", "nethept-sim", 300, 0, "IC", 30, 64, 7, 256)
        service.cache.put(key, pool, carried_pool_nbytes(pool))
        service._spill_cache()
        assert service.counters["store_spilled"] == 1

        reborn = SeedService(ServiceConfig(pool_store=store_dir))
        assert reborn.counters["store_warm_loaded"] == 1
        cached = reborn.cache.get(key)
        assert cached is not None
        assert np.array_equal(cached.members, pool.members)
        assert np.array_equal(cached.indptr, pool.indptr)
        assert np.array_equal(cached.root_counts, pool.root_counts)

    def test_graph_entries_do_not_spill(self, tmp_path):
        from repro.service.server import SeedService, ServiceConfig

        store_dir = str(tmp_path / "service-store")
        service = SeedService(ServiceConfig(pool_store=store_dir))
        service.cache.put(("graph", "nethept-sim", 300, 0), object(), 64)
        service._spill_cache()
        assert service.counters["store_spilled"] == 0
        assert len(service.store) == 0

    def test_no_store_service_noop(self):
        from repro.service.server import SeedService, ServiceConfig

        service = SeedService(ServiceConfig())
        assert service.store is None
        service._spill_cache()  # must not raise

    def test_health_reports_store(self, tmp_path):
        from repro.service.server import SeedService, ServiceConfig

        service = SeedService(
            ServiceConfig(pool_store=str(tmp_path / "service-store"))
        )
        health = service._health()
        assert health["store"]["stores"] == 0
        assert "service-store" in health["store"]["root"]

    def test_cache_entries_snapshot(self):
        from repro.service.cache import ServiceCache

        cache = ServiceCache(max_bytes=1000)
        cache.put(("a",), 1, 10)
        cache.put(("b",), 2, 10)
        cache.get(("a",))  # most recent now
        entries = cache.entries()
        assert [key for key, _, _ in entries] == [("b",), ("a",)]
        assert [value for _, value, _ in entries] == [2, 1]
