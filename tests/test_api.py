"""Public-API surface tests.

Guard rails for downstream users: everything advertised in ``__all__`` is
importable, the version is single-sourced, and the central entry points
keep their signatures.
"""

import importlib
import inspect

import pytest

import repro


PACKAGES = [
    "repro",
    "repro.graph",
    "repro.diffusion",
    "repro.sampling",
    "repro.core",
    "repro.baselines",
    "repro.experiments",
    "repro.utils",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), package_name
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} missing"


def test_version_single_sourced():
    from repro._version import __version__

    assert repro.__version__ == __version__
    parts = __version__.split(".")
    assert len(parts) == 3
    assert all(part.isdigit() for part in parts)


def test_top_level_exports():
    # The names the README's quickstart depends on.
    for name in ("ASTI", "AdaptIM", "ATEUC", "IndependentCascade",
                 "LinearThreshold", "DiGraph", "ReproError"):
        assert name in repro.__all__


class TestSignatures:
    def test_asti_run_signature(self):
        params = inspect.signature(repro.ASTI.run).parameters
        assert list(params) == [
            "self", "graph", "eta", "realization", "seed", "max_rounds",
        ]

    def test_asti_constructor_defaults(self):
        params = inspect.signature(repro.ASTI.__init__).parameters
        assert params["epsilon"].default == 0.5  # the paper's setting
        assert params["batch_size"].default == 1

    def test_selector_protocol(self):
        from repro.core.policy import SeedSelector
        from repro.core.trim import TrimSelector
        from repro.core.trim_b import TrimBSelector
        from repro.baselines.opim import OpimNodeSelector

        for selector_cls in (TrimSelector, TrimBSelector, OpimNodeSelector):
            assert issubclass(selector_cls, SeedSelector)


class TestDocstrings:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_public_items_documented(self, package_name):
        """Every advertised class/function carries a docstring."""
        package = importlib.import_module(package_name)
        for name in package.__all__:
            item = getattr(package, name)
            if inspect.isclass(item) or inspect.isfunction(item):
                assert inspect.getdoc(item), f"{package_name}.{name} undocumented"

    def test_module_docstrings(self):
        import pkgutil

        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            try:
                module = importlib.import_module(info.name)
            except ImportError:
                # Optional-extra modules (repro.kernels.numba_backend) only
                # import where their extra is installed; the kernel registry
                # guards every runtime path through them.
                continue
            assert module.__doc__, f"{info.name} lacks a module docstring"
