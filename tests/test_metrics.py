"""Unit tests for derived metrics (Table 3 machinery)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.harness import AlgorithmOutcome, RunObservation
from repro.experiments.metrics import (
    improvement_ratio,
    overshoot_fraction,
    speedup,
    table3_cell,
)


def outcome(name, eta, seed_counts, achieved):
    out = AlgorithmOutcome(algorithm=name, eta=eta)
    for i, (count, ok) in enumerate(zip(seed_counts, achieved)):
        out.runs.append(
            RunObservation(
                realization_index=i,
                seed_count=count,
                spread=eta if ok else eta - 1,
                achieved=ok,
                seconds=0.1,
            )
        )
    return out


class TestImprovementRatio:
    def test_paper_style_value(self):
        # "ATEUC selects 65.7% more nodes": 193.8 vs 116.95.
        assert improvement_ratio(193.8, 116.95) == pytest.approx(0.657, abs=0.001)

    def test_zero_improvement(self):
        assert improvement_ratio(10, 10) == 0.0

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            improvement_ratio(5, 0)


class TestTable3Cell:
    def test_ratio_when_feasible(self):
        ateuc = outcome("ATEUC", 10, [14, 14], [True, True])
        asti = outcome("ASTI", 10, [10, 10], [True, True])
        cell = table3_cell(0.1, ateuc, asti)
        assert cell.ratio == pytest.approx(0.4)
        assert cell.rendered() == "40.0%"

    def test_na_when_any_realization_fails(self):
        ateuc = outcome("ATEUC", 10, [14, 14], [True, False])
        asti = outcome("ASTI", 10, [10, 10], [True, True])
        cell = table3_cell(0.1, ateuc, asti)
        assert cell.ratio is None
        assert cell.rendered() == "N/A"
        assert not cell.baseline_feasible


class TestOvershoot:
    def test_exact_target_no_overshoot(self):
        assert overshoot_fraction(100, 100) == 0.0

    def test_fifty_percent(self):
        assert overshoot_fraction(150, 100) == pytest.approx(0.5)

    def test_undershoot_clamped(self):
        assert overshoot_fraction(80, 100) == 0.0

    def test_invalid_eta(self):
        with pytest.raises(ConfigurationError):
            overshoot_fraction(10, 0)


class TestSpeedup:
    def test_faster_candidate(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            speedup(1.0, 0.0)
